//! Empirical `(q, r)` frontier sweep: every problem family's constructive
//! mapping schemas executed through the mr-sim engine over a q-grid, with
//! the measured curve checked against the §2.4 lower-bound recipe.
//!
//! The analytic frontiers in [`mr_core::frontier`] come from *exhaustive
//! validation* — counting assignments over the space of potential inputs.
//! This module closes the loop with the *execution* layer. Since the
//! registry refactor it no longer knows any family by name: it asks
//! [`mr_core::family::registry`] for the implemented families as
//! `Box<dyn DynFamily>`, fans their grid points out over worker threads,
//! and merges the measured points back in grid order. Each point records
//!
//! * the measured reducer size `q` (max load) and replication rate `r`,
//! * the reducer-load skew and the shuffle's partition skew, bytes moved,
//!   and per-partition occupancy histogram
//!   ([`ShuffleStats`](mr_sim::ShuffleStats)),
//! * the round's wall-clock time, and
//! * the family's analytic lower bound `max(1, q·|O|/(g(q)·|I|))` at the
//!   measured `q`, plus the gap ratio `r / bound`.
//!
//! Because the default instances are complete, the §2.4 theorem applies
//! verbatim: **measured `r ≥ bound` must hold at every grid point**, and
//! the test suite asserts it. Families whose algorithms are exactly
//! optimal (Hamming splitting, matrix multiplication, the 2-path `q = n`
//! point) show `gap = 1`; the others show the constant-factor daylight
//! the paper proves is all that remains. The sparse `G(n, m)` scenarios
//! ([`mr_core::family::sparse_scenarios`], selectable via
//! `repro frontier triangles-gnm`) run the same schemas on seeded random
//! data graphs, where the instance-counted bound still holds but is
//! weak — the §4.2 rescaling story.
//!
//! # Parallelism and determinism
//!
//! Grid points are independent, so the driver fans them out as one batch
//! on the configured executor — the resident
//! [`WorkerPool`] by default, whose work-stealing
//! injector gives dynamic load balancing (point costs vary by orders of
//! magnitude across the grid); the retained scoped-thread path pulls from
//! a shared queue with the same effect. Every point carries its grid index and results are merged by
//! index, so the sweep's semantic output is **byte-identical for every
//! worker count** — the same contract the engine itself makes. Only two
//! fields depend on how a sweep was executed rather than what it
//! computed: wall-clock and the shuffle's execution picture (partition
//! skew, bytes moved, occupancy histogram).
//! [`SweepReport::semantic_json`] excludes them (and is what the
//! determinism tests compare); [`SweepReport::full_json`] includes them
//! for human consumption.

use crate::json;
use crate::table::{fmt, Table};
use mr_core::family::{extended_registry, registry, DynFamily, Scale};
use mr_sim::{EngineConfig, Executor, WorkerPool};
use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::Duration;

/// Configuration of one sweep run.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Number of q-grid points executed concurrently (each on its own
    /// scoped thread). `0` and `1` both run the grid sequentially; the
    /// semantic results are identical for every value.
    pub sweep_workers: usize,
    /// Engine configuration for each grid point's round. The default is
    /// sequential: the sweep parallelises *across* grid points, which
    /// dominates intra-round parallelism for the small model instances.
    pub engine: EngineConfig,
    /// Which substrate the q-point queue itself fans out on: the resident
    /// [`WorkerPool`] (default) or per-sweep scoped threads (the retained
    /// oracle). Semantic results are byte-identical on both.
    pub executor: Executor,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            sweep_workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            engine: EngineConfig::sequential(),
            executor: Executor::Pool,
        }
    }
}

/// One measured grid point of a family's frontier.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Schema name with its grid parameter, e.g. `splitting-d(b=10, k=5, d=1)`.
    pub algorithm: String,
    /// The schema's declared reducer budget (its design `q`).
    pub q_declared: u64,
    /// Measured maximum reducer load — the point's effective `q`.
    pub q: u64,
    /// Measured replication rate.
    pub r: f64,
    /// The family's clamped §2.4 lower bound evaluated at the measured `q`.
    pub bound: f64,
    /// Gap ratio `r / bound` (≥ 1 for every valid schema).
    pub gap: f64,
    /// Reducer-load skew `max / mean`.
    pub load_skew: f64,
    /// Shuffle partition skew (execution metadata; 1 partition when the
    /// engine runs sequentially, so 1.0 or 0.0 there).
    pub partition_skew: f64,
    /// Bytes the columnar shuffle moved (`pairs × pair width` — the
    /// communication cost in bytes rather than pairs). Execution
    /// metadata: the pair width depends on the erased key/value layout.
    pub shuffle_bytes: u64,
    /// Per-partition shuffle occupancy histogram (execution metadata:
    /// one entry per engine partition, so its shape follows the worker
    /// count).
    pub bucket_loads: Vec<u64>,
    /// Outputs the round emitted.
    pub outputs: u64,
    /// Wall-clock time of the engine round (execution metadata).
    pub wall: Duration,
}

/// A family's measured frontier: grid points sorted by ascending `q`.
#[derive(Debug, Clone)]
pub struct FamilyCurve {
    /// Family identifier (stable, used by tests and JSON consumers).
    pub family: &'static str,
    /// Human-readable description of the model instance swept.
    pub instance: String,
    /// Measured points, ascending in `q`.
    pub points: Vec<SweepPoint>,
}

/// The result of a whole sweep.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Engine worker count each grid point ran with.
    pub engine_workers: usize,
    /// One curve per problem family.
    pub families: Vec<FamilyCurve>,
}

/// A queued grid-point job: the closure that runs it.
type PointJob<'a> = Box<dyn FnOnce() -> SweepPoint + Send + 'a>;

/// Runs jobs across `workers` lanes of the selected substrate, returning
/// results in job order regardless of which worker ran what. On the pool
/// the jobs go down as one batch — the injector's task stealing is the
/// load balancing; on the scoped oracle, `workers` threads pull from a
/// shared queue with the same effect.
fn run_jobs(jobs: Vec<PointJob<'_>>, workers: usize, executor: Executor) -> Vec<SweepPoint> {
    let n = jobs.len();
    let workers = workers.clamp(1, n.max(1));
    if workers > 1 && executor == Executor::Pool {
        // Slot-indexed pool batch: results land in submission order, so
        // the grid order is preserved without an explicit merge.
        return WorkerPool::global().run(jobs);
    }
    let queue: Mutex<VecDeque<(usize, PointJob<'_>)>> =
        Mutex::new(jobs.into_iter().enumerate().collect());
    let drain = || {
        let mut out: Vec<(usize, SweepPoint)> = Vec::new();
        loop {
            // Pop under the lock, run outside it.
            let job = queue.lock().expect("sweep queue poisoned").pop_front();
            match job {
                Some((i, j)) => out.push((i, j())),
                None => return out,
            }
        }
    };
    let mut indexed: Vec<(usize, SweepPoint)> = if workers <= 1 {
        drain()
    } else {
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers).map(|_| s.spawn(drain)).collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("sweep worker panicked"))
                .collect()
        })
    };
    // Deterministic merge: grid order, not completion order.
    indexed.sort_by_key(|(i, _)| *i);
    debug_assert_eq!(indexed.len(), n);
    indexed.into_iter().map(|(_, p)| p).collect()
}

/// Sweeps the given families over their q-grids.
///
/// This is the whole executor: one job per `(family, grid point)` pair,
/// fanned out over [`SweepConfig::sweep_workers`] threads, regrouped per
/// family, and sorted by `(q, algorithm)` so the presentation order is
/// total and worker-count independent. All family knowledge — instances,
/// schemas, recipes — lives behind [`DynFamily`].
pub fn sweep_families(families: &[Box<dyn DynFamily>], config: &SweepConfig) -> SweepReport {
    let engine = &config.engine;
    let mut jobs: Vec<PointJob<'_>> = Vec::new();
    let mut family_of: Vec<usize> = Vec::new();
    for (fi, fam) in families.iter().enumerate() {
        for pi in 0..fam.grid().len() {
            family_of.push(fi);
            jobs.push(Box::new(move || {
                let fp = fam.run(pi, engine);
                SweepPoint {
                    algorithm: fp.measured.algorithm,
                    q_declared: fp.q_declared,
                    q: fp.measured.q,
                    r: fp.measured.r,
                    bound: fp.bound,
                    gap: fp.gap,
                    load_skew: fp.measured.load_skew,
                    partition_skew: fp.partition_skew,
                    shuffle_bytes: fp.shuffle_bytes,
                    bucket_loads: fp.bucket_loads,
                    outputs: fp.measured.outputs,
                    wall: fp.wall,
                }
            }));
        }
    }
    let points = run_jobs(jobs, config.sweep_workers, config.executor);

    let mut curves: Vec<FamilyCurve> = families
        .iter()
        .map(|f| FamilyCurve {
            family: f.name(),
            instance: f.instance(),
            points: Vec::new(),
        })
        .collect();
    for (fi, p) in family_of.into_iter().zip(points) {
        curves[fi].points.push(p);
    }
    for fam in &mut curves {
        // Present each curve in ascending q (ties broken by name so the
        // order is total and worker-count independent).
        fam.points
            .sort_by(|a, b| a.q.cmp(&b.q).then_with(|| a.algorithm.cmp(&b.algorithm)));
    }
    SweepReport {
        engine_workers: config.engine.effective_workers(),
        families: curves,
    }
}

/// Sweeps every implemented problem family over its q-grid — the
/// [`registry`] at default scale through [`sweep_families`].
///
/// The returned curves are fully deterministic in everything except the
/// two execution-metadata fields (wall-clock, partition skew): same
/// results for any `sweep_workers`, and the semantic fields are also
/// identical for any engine worker count (the engine's own contract).
///
/// # Panics
/// Panics if `config.engine` carries a `max_reducer_inputs` budget
/// smaller than some grid point's load. The sweep exists to *measure*
/// reducer loads, so run it without a budget (the default); budget
/// enforcement has its own tests in `mr-sim`.
pub fn sweep_all(config: &SweepConfig) -> SweepReport {
    sweep_families(&registry(), config)
}

impl SweepReport {
    fn json(&self, execution_metadata: bool) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"subsystem\": \"frontier_sweep\",\n");
        if execution_metadata {
            out.push_str(&format!("  \"engine_workers\": {},\n", self.engine_workers));
        }
        out.push_str("  \"families\": [\n");
        for (fi, fam) in self.families.iter().enumerate() {
            out.push_str(&format!(
                "    {{\n      \"family\": \"{}\",\n      \"instance\": \"{}\",\n      \"points\": [\n",
                json::escape(fam.family),
                json::escape(&fam.instance)
            ));
            for (pi, p) in fam.points.iter().enumerate() {
                let mut obj = json::Obj::new();
                obj.str("algorithm", &p.algorithm)
                    .int("q_declared", p.q_declared)
                    .int("q", p.q)
                    .num("r", p.r)
                    .num("bound", p.bound)
                    .num("gap", p.gap)
                    .num("load_skew", p.load_skew)
                    .int("outputs", p.outputs);
                if execution_metadata {
                    let histogram = p
                        .bucket_loads
                        .iter()
                        .map(|l| l.to_string())
                        .collect::<Vec<_>>()
                        .join(", ");
                    obj.num("partition_skew", p.partition_skew)
                        .int("shuffle_bytes", p.shuffle_bytes)
                        .raw("bucket_loads", format!("[{histogram}]"))
                        .raw("wall_ms", format!("{:.3}", p.wall.as_secs_f64() * 1e3));
                }
                out.push_str("        ");
                out.push_str(&obj.compact());
                if pi + 1 < fam.points.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str("      ]\n    }");
            if fi + 1 < self.families.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// The deterministic JSON serialisation: everything the sweep
    /// *computed*, nothing about how it was executed. Byte-identical for
    /// every sweep worker count and every engine worker count.
    pub fn semantic_json(&self) -> String {
        self.json(false)
    }

    /// The full JSON serialisation: the semantic fields plus per-point
    /// `partition_skew` and `wall_ms` and the engine worker count. The
    /// extra fields describe one particular execution and vary run to run.
    pub fn full_json(&self) -> String {
        self.json(true)
    }

    /// Renders the measured-vs-analytic comparison table.
    pub fn table(&self) -> String {
        let mut t = Table::new(&[
            "family",
            "algorithm",
            "q(decl)",
            "q",
            "r",
            "bound",
            "gap",
            "skew",
            "outputs",
            "shuffle(KiB)",
            "wall(ms)",
        ]);
        for fam in &self.families {
            for p in &fam.points {
                t.row(vec![
                    fam.family.to_string(),
                    p.algorithm.clone(),
                    p.q_declared.to_string(),
                    p.q.to_string(),
                    fmt(p.r),
                    fmt(p.bound),
                    fmt(p.gap),
                    fmt(p.load_skew),
                    p.outputs.to_string(),
                    format!("{:.1}", p.shuffle_bytes as f64 / 1024.0),
                    format!("{:.3}", p.wall.as_secs_f64() * 1e3),
                ]);
            }
        }
        t.render()
    }
}

/// Formats a report with the standard frontier prose.
fn render(report: &SweepReport) -> String {
    format!(
        "Empirical (q, r) frontier sweep — every family's constructive schemas \
         executed\nthrough the engine on its complete model instance, versus the \
         §2.4 lower bound.\ngap = measured r / analytic bound (≥ 1 for every valid \
         schema; 1 = optimal).\n\n{}\nJSON (semantic curve — deterministic across \
         runs and worker counts; wall-clock\nand partition skew are execution \
         metadata, see the table / SweepReport::full_json):\n\n{}",
        report.table(),
        report.semantic_json()
    )
}

/// The `repro frontier` report: the comparison table (wall-clock column
/// included) plus the *semantic* JSON.
///
/// The JSON block is deliberately [`semantic_json`](SweepReport::semantic_json):
/// the repro binary's long-standing contract is byte-identical output
/// across runs, and only the table's human-facing `wall(ms)` column is
/// exempt. Execution metadata (`wall_ms`, `partition_skew`,
/// `engine_workers`) is available programmatically via
/// [`SweepReport::full_json`].
pub fn report() -> String {
    let report = sweep_all(&SweepConfig::default());
    render(&report)
}

/// The scale selector tokens `repro frontier` understands.
pub const SCALE_TOKENS: [&str; 3] = ["small", "default", "full"];

/// The family names selectable in `repro frontier` (complete families
/// plus sparse scenarios, in registry order).
///
/// Kept as a static list so CLI token validation never constructs the
/// registry's instance data (complete bit-string universes, seeded
/// graphs with subgraph counting…) just to read eight names; the
/// `selector_vocabulary_is_consistent` test pins it to the actual
/// [`extended_registry`] contents.
pub fn available_families() -> Vec<&'static str> {
    vec![
        "hamming-d1",
        "triangles",
        "sample-c4",
        "two-path",
        "join-cycle3",
        "matmul",
        "triangles-gnm",
        "sample-c4-gnm",
    ]
}

/// True when `token` is something `repro frontier` can consume: a family
/// name or a scale keyword.
pub fn is_selector(token: &str) -> bool {
    SCALE_TOKENS.contains(&token) || available_families().contains(&token)
}

/// The `repro frontier` report for a selection: family names filter the
/// extended registry (complete + sparse), an optional scale token picks
/// the instance-size preset. No selectors at all reproduces [`report`]
/// byte-for-byte.
///
/// Returns `Err` with a message listing the valid selectors when a token
/// is unknown or two scales are named.
pub fn report_for(selectors: &[String]) -> Result<String, String> {
    let mut scale: Option<Scale> = None;
    let mut picked: Vec<&'static str> = Vec::new();
    let names = available_families();
    for tok in selectors {
        if let Some(sc) = crate::selectors::scale_token(tok) {
            crate::selectors::set_scale(&mut scale, sc)?;
        } else if !crate::selectors::pick_family(&names, tok, &mut picked) {
            return Err(format!(
                "unknown frontier selector '{tok}'; families: {}; scales: {}",
                names.join(", "),
                SCALE_TOKENS.join(", ")
            ));
        }
    }
    if scale.is_none() && picked.is_empty() {
        return Ok(report());
    }
    let scale = scale.unwrap_or_default();
    let families: Vec<Box<dyn DynFamily>> = extended_registry(scale)
        .into_iter()
        .filter(|f| picked.is_empty() || picked.contains(&f.name()))
        .collect();
    let report = sweep_families(&families, &SweepConfig::default());
    Ok(format!(
        "Selection: scale={}, families={}.\n\n{}",
        match scale {
            Scale::Small => "small",
            Scale::Default => "default",
            Scale::Full => "full",
        },
        if picked.is_empty() {
            "all".to_string()
        } else {
            picked.join(", ")
        },
        render(&report)
    ))
}

/// The `repro frontier` runner: selector args as documented in
/// [`report_for`]; selector errors become the report text (the repro
/// driver validates tokens up front, so this is a backstop).
pub fn report_args(args: &[String]) -> String {
    report_for(args).unwrap_or_else(|e| format!("frontier selection error: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mr_core::frontier::bound_gap;

    fn quick_config(sweep_workers: usize) -> SweepConfig {
        SweepConfig {
            sweep_workers,
            ..SweepConfig::default()
        }
    }

    #[test]
    fn all_families_present_with_nonempty_grids() {
        let rep = sweep_all(&quick_config(2));
        let names: Vec<&str> = rep.families.iter().map(|f| f.family).collect();
        assert_eq!(
            names,
            vec![
                "hamming-d1",
                "triangles",
                "sample-c4",
                "two-path",
                "join-cycle3",
                "matmul"
            ]
        );
        for fam in &rep.families {
            assert!(
                fam.points.len() >= 3,
                "{}: grid too small ({} points)",
                fam.family,
                fam.points.len()
            );
        }
    }

    #[test]
    fn measured_r_dominates_bound_everywhere() {
        // The acceptance gate: on the complete instance the §2.4 theorem
        // guarantees r ≥ bound at every grid point.
        let rep = sweep_all(&quick_config(4));
        for fam in &rep.families {
            for p in &fam.points {
                assert!(
                    p.r >= p.bound - 1e-9,
                    "{} / {}: measured r={} below bound={}",
                    fam.family,
                    p.algorithm,
                    p.r,
                    p.bound
                );
                assert!(p.gap >= 1.0 - 1e-9);
                assert!((p.gap - bound_gap(p.r, p.bound)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn curves_ascend_in_q_and_respect_declared_budgets() {
        let rep = sweep_all(&quick_config(3));
        for fam in &rep.families {
            for w in fam.points.windows(2) {
                assert!(w[1].q >= w[0].q, "{}: curve not sorted by q", fam.family);
            }
            for p in &fam.points {
                assert!(
                    p.q <= p.q_declared,
                    "{} / {}: measured load {} exceeds declared budget {}",
                    fam.family,
                    p.algorithm,
                    p.q,
                    p.q_declared
                );
            }
        }
    }

    #[test]
    fn optimal_families_sit_exactly_on_the_bound() {
        let rep = sweep_all(&quick_config(2));
        // Hamming splitting and one-phase matmul are exactly optimal at
        // every grid point; the 2-path per-node point is too.
        for family in ["hamming-d1", "matmul"] {
            let fam = rep.families.iter().find(|f| f.family == family).unwrap();
            for p in &fam.points {
                assert!(
                    (p.gap - 1.0).abs() < 1e-9,
                    "{family} / {}: gap {} ≠ 1",
                    p.algorithm,
                    p.gap
                );
            }
        }
        let two_path = rep
            .families
            .iter()
            .find(|f| f.family == "two-path")
            .unwrap();
        let per_node = two_path
            .points
            .iter()
            .find(|p| p.algorithm.starts_with("per-node"))
            .unwrap();
        assert!((per_node.gap - 1.0).abs() < 1e-9);
    }

    #[test]
    fn table_renders_every_point() {
        let rep = sweep_all(&quick_config(2));
        let t = rep.table();
        assert!(t.contains("wall(ms)"));
        assert!(t.contains("shuffle(KiB)"));
        let total: usize = rep.families.iter().map(|f| f.points.len()).sum();
        // Header + separator + one line per point.
        assert_eq!(t.lines().count(), 2 + total);
    }

    #[test]
    fn json_shapes() {
        let rep = sweep_all(&quick_config(2));
        let semantic = rep.semantic_json();
        let full = rep.full_json();
        assert!(semantic.contains("\"frontier_sweep\""));
        assert!(!semantic.contains("wall_ms"));
        assert!(!semantic.contains("partition_skew"));
        assert!(!semantic.contains("shuffle_bytes"));
        assert!(!semantic.contains("bucket_loads"));
        assert!(full.contains("wall_ms"));
        assert!(full.contains("partition_skew"));
        assert!(full.contains("shuffle_bytes"));
        assert!(full.contains("bucket_loads"));
        assert!(full.contains("engine_workers"));
        // Balanced braces/brackets — cheap well-formedness check given
        // the serializer never emits braces inside strings.
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(
                semantic.matches(open).count(),
                semantic.matches(close).count()
            );
        }
    }

    #[test]
    fn shuffle_execution_metadata_is_populated() {
        // Every default grid point shuffles something, so the bytes-moved
        // figure and occupancy histogram must be live, the histogram must
        // total the round's pair count (bytes = pairs × a fixed per-pair
        // width), and a sequential engine means exactly one partition.
        let rep = sweep_all(&quick_config(2));
        for fam in &rep.families {
            for p in &fam.points {
                let pairs: u64 = p.bucket_loads.iter().sum();
                assert!(
                    pairs > 0,
                    "{} / {}: empty histogram",
                    fam.family,
                    p.algorithm
                );
                assert!(p.shuffle_bytes > 0, "{} / {}", fam.family, p.algorithm);
                assert_eq!(
                    p.shuffle_bytes % pairs,
                    0,
                    "{} / {}: bytes not a multiple of pairs",
                    fam.family,
                    p.algorithm
                );
                assert_eq!(
                    p.bucket_loads.len(),
                    1,
                    "{} / {}: sequential engine must report one partition",
                    fam.family,
                    p.algorithm
                );
            }
        }
    }

    #[test]
    fn selector_vocabulary_is_consistent() {
        // The static token list must match the registry exactly — it
        // exists only so token validation is free of instance building.
        let registry_names: Vec<&str> = extended_registry(Scale::Default)
            .iter()
            .map(|f| f.name())
            .collect();
        assert_eq!(available_families(), registry_names);
        for fam in available_families() {
            assert!(is_selector(fam), "{fam} must be selectable");
        }
        for scale in SCALE_TOKENS {
            assert!(is_selector(scale));
        }
        assert!(!is_selector("fig1"));
        assert!(!is_selector("nonsense"));
    }

    #[test]
    fn report_for_rejects_unknown_and_double_scale() {
        let err = report_for(&["bogus".to_string()]).unwrap_err();
        assert!(
            err.contains("hamming-d1"),
            "error must list families: {err}"
        );
        assert!(err.contains("small"), "error must list scales: {err}");
        let err2 = report_for(&["small".to_string(), "full".to_string()]).unwrap_err();
        assert!(err2.contains("at most one scale"));
    }

    #[test]
    fn report_for_selects_families_and_scale() {
        let out = report_for(&["small".to_string(), "matmul".to_string()]).unwrap();
        assert!(out.starts_with("Selection: scale=small, families=matmul."));
        assert!(out.contains("one-phase(n=4, s=1)"));
        assert!(!out.contains("hamming"), "unselected family leaked in");
    }

    #[test]
    fn report_for_empty_selection_is_the_default_report() {
        // No selectors → the legacy byte-identical report shape: no
        // "Selection:" banner, all six default families. (Comparing two
        // runs' full text would trip on the wall-clock column.)
        let out = report_for(&[]).unwrap();
        assert!(out.starts_with("Empirical (q, r) frontier sweep"));
        assert!(!out.contains("Selection:"));
        for fam in registry().iter().map(|f| f.name()) {
            assert!(
                out.contains(fam),
                "family {fam} missing from default report"
            );
        }
    }
}
