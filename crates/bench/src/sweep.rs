//! Empirical `(q, r)` frontier sweep: every problem family's constructive
//! mapping schemas executed through the mr-sim engine over a q-grid, with
//! the measured curve checked against the §2.4 lower-bound recipe.
//!
//! The analytic frontiers in [`mr_core::frontier`] come from *exhaustive
//! validation* — counting assignments over the space of potential inputs.
//! This module closes the loop with the *execution* layer: it builds each
//! family's complete model instance (every potential input present, the
//! instance the paper's lower-bound analysis assumes in §2.3), runs the
//! family's schemas through [`mr_sim::run_schema_timed`] at a grid of
//! reducer sizes, and records for every grid point
//!
//! * the measured reducer size `q` (max load) and replication rate `r`,
//! * the reducer-load skew and the shuffle's partition skew
//!   ([`ShuffleStats`](mr_sim::ShuffleStats), PR 2),
//! * the round's wall-clock time, and
//! * the family's analytic lower bound `max(1, q·|O|/(g(q)·|I|))` at the
//!   measured `q`, plus the gap ratio `r / bound`.
//!
//! Because the instances are complete, the §2.4 theorem applies verbatim:
//! **measured `r ≥ bound` must hold at every grid point**, and the test
//! suite asserts it. Families whose algorithms are exactly optimal
//! (Hamming splitting, matrix multiplication, the 2-path `q = n` point)
//! show `gap = 1`; the others show the constant-factor daylight the paper
//! proves is all that remains.
//!
//! # Parallelism and determinism
//!
//! Grid points are independent, so the driver fans them out across
//! [`std::thread::scope`] workers pulling from a shared queue (dynamic
//! load balancing — point costs vary by orders of magnitude across the
//! grid). Every point carries its grid index and results are merged by
//! index, so the sweep's semantic output is **byte-identical for every
//! worker count** — the same contract the engine itself makes. Only two
//! fields depend on how a sweep was executed rather than what it
//! computed: wall-clock and partition skew. [`SweepReport::semantic_json`]
//! excludes them (and is what the determinism tests compare);
//! [`SweepReport::full_json`] includes them for human consumption.

use crate::table::{fmt, Table};
use mr_core::frontier::{bound_gap, MeasuredPoint};
use mr_core::problems::hamming::DistanceDSplittingSchema;
use mr_core::problems::hamming::HammingProblem;
use mr_core::problems::join::query::{Database, Query};
use mr_core::problems::join::shares::{SharesSchema, TaggedTuple};
use mr_core::problems::matmul::problem::numeric_inputs;
use mr_core::problems::matmul::{MatMulProblem, Matrix, OnePhaseSchema};
use mr_core::problems::sample_graph::MultisetPartitionSchema;
use mr_core::problems::sample_graph::SampleGraphProblem;
use mr_core::problems::triangle::{NodePartitionSchema, TriangleProblem};
use mr_core::problems::two_path::{BucketPairSchema, PerNodeSchema, TwoPathProblem};
use mr_core::LowerBoundRecipe;
use mr_core::MappingSchema;
use mr_graph::{patterns, Graph};
use mr_sim::schema::SchemaJob;
use mr_sim::{run_schema_timed, EngineConfig};
use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::Duration;

/// Configuration of one sweep run.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Number of q-grid points executed concurrently (each on its own
    /// scoped thread). `0` and `1` both run the grid sequentially; the
    /// semantic results are identical for every value.
    pub sweep_workers: usize,
    /// Engine configuration for each grid point's round. The default is
    /// sequential: the sweep parallelises *across* grid points, which
    /// dominates intra-round parallelism for the small model instances.
    pub engine: EngineConfig,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            sweep_workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            engine: EngineConfig::sequential(),
        }
    }
}

/// One measured grid point of a family's frontier.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Schema name with its grid parameter, e.g. `splitting-d(b=10, k=5, d=1)`.
    pub algorithm: String,
    /// The schema's declared reducer budget (its design `q`).
    pub q_declared: u64,
    /// Measured maximum reducer load — the point's effective `q`.
    pub q: u64,
    /// Measured replication rate.
    pub r: f64,
    /// The family's clamped §2.4 lower bound evaluated at the measured `q`.
    pub bound: f64,
    /// Gap ratio `r / bound` (≥ 1 for every valid schema).
    pub gap: f64,
    /// Reducer-load skew `max / mean`.
    pub load_skew: f64,
    /// Shuffle partition skew (execution metadata; 1 partition when the
    /// engine runs sequentially, so 1.0 or 0.0 there).
    pub partition_skew: f64,
    /// Outputs the round emitted.
    pub outputs: u64,
    /// Wall-clock time of the engine round (execution metadata).
    pub wall: Duration,
}

/// A family's measured frontier: grid points sorted by ascending `q`.
#[derive(Debug, Clone)]
pub struct FamilyCurve {
    /// Family identifier (stable, used by tests and JSON consumers).
    pub family: &'static str,
    /// Human-readable description of the complete model instance swept.
    pub instance: String,
    /// Measured points, ascending in `q`.
    pub points: Vec<SweepPoint>,
}

/// The result of a whole sweep.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Engine worker count each grid point ran with.
    pub engine_workers: usize,
    /// One curve per problem family.
    pub families: Vec<FamilyCurve>,
}

/// A queued grid-point job: family index plus the closure that runs it.
type PointJob<'a> = Box<dyn FnOnce() -> SweepPoint + Send + 'a>;

/// Runs jobs across `workers` scoped threads pulling from a shared queue,
/// returning results in job order regardless of which worker ran what.
fn run_jobs(jobs: Vec<PointJob<'_>>, workers: usize) -> Vec<SweepPoint> {
    let n = jobs.len();
    let workers = workers.clamp(1, n.max(1));
    let queue: Mutex<VecDeque<(usize, PointJob<'_>)>> =
        Mutex::new(jobs.into_iter().enumerate().collect());
    let drain = || {
        let mut out: Vec<(usize, SweepPoint)> = Vec::new();
        loop {
            // Pop under the lock, run outside it.
            let job = queue.lock().expect("sweep queue poisoned").pop_front();
            match job {
                Some((i, j)) => out.push((i, j())),
                None => return out,
            }
        }
    };
    let mut indexed: Vec<(usize, SweepPoint)> = if workers <= 1 {
        drain()
    } else {
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers).map(|_| s.spawn(drain)).collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("sweep worker panicked"))
                .collect()
        })
    };
    // Deterministic merge: grid order, not completion order.
    indexed.sort_by_key(|(i, _)| *i);
    debug_assert_eq!(indexed.len(), n);
    indexed.into_iter().map(|(_, p)| p).collect()
}

/// Runs one schema on one instance and assembles the grid point.
fn measure_point<I, O, S>(
    q_declared: u64,
    inputs: &[I],
    schema: &S,
    recipe: &LowerBoundRecipe,
    name: String,
    engine: &EngineConfig,
) -> SweepPoint
where
    I: Clone + Send + Sync,
    O: Send,
    S: SchemaJob<I, O>,
{
    let (_outputs, metrics, wall) = run_schema_timed(inputs, schema, engine)
        .expect("a sweep round overflowed the caller-supplied reducer budget");
    let mp = MeasuredPoint::from_round(name, &metrics);
    let bound = recipe.clamped_lower_bound(mp.q as f64);
    SweepPoint {
        algorithm: mp.algorithm,
        q_declared,
        q: mp.q,
        r: mp.r,
        bound,
        gap: bound_gap(mp.r, bound),
        load_skew: mp.load_skew,
        partition_skew: metrics.shuffle.partition_skew(),
        outputs: mp.outputs,
        wall,
    }
}

/// Instance sizes of the sweep. Small enough that the whole grid runs in
/// well under a second in release builds (the instances are *complete* —
/// cost grows steeply with size), large enough that every family has a
/// non-degenerate grid.
mod sizes {
    /// Hamming bit-string length (grid: every divisor of `B`).
    pub const HAMMING_B: u32 = 10;
    /// Triangle node count (grid: divisors of `N` as group counts).
    pub const TRIANGLE_N: u32 = 16;
    /// Sample-graph (4-cycle pattern) node count.
    pub const SAMPLE_N: u32 = 8;
    /// 2-path node count.
    pub const TWO_PATH_N: u32 = 16;
    /// Join domain size per variable (cycle query over 3 variables).
    pub const JOIN_N: u32 = 6;
    /// Matrix side length (grid: divisors of `N` as tile sizes).
    pub const MATMUL_N: u32 = 8;
}

/// Sweeps every implemented problem family over its q-grid.
///
/// The returned curves are fully deterministic in everything except the
/// two execution-metadata fields (wall-clock, partition skew): same
/// results for any `sweep_workers`, and the semantic fields are also
/// identical for any engine worker count (the engine's own contract).
///
/// # Panics
/// Panics if `config.engine` carries a `max_reducer_inputs` budget
/// smaller than some grid point's load. The sweep exists to *measure*
/// reducer loads, so run it without a budget (the default); budget
/// enforcement has its own tests in `mr-sim`.
pub fn sweep_all(config: &SweepConfig) -> SweepReport {
    use sizes::*;
    let engine = &config.engine;

    // Complete model instances, built once and shared by the grid jobs.
    let hamming_inputs: Vec<u64> = (0..(1u64 << HAMMING_B)).collect();
    let triangle_graph = Graph::complete(TRIANGLE_N as usize);
    let c4 = patterns::cycle(4);
    let sample_graph = Graph::complete(SAMPLE_N as usize);
    let two_path_graph = Graph::complete(TWO_PATH_N as usize);
    let join_query = Query::cycle(3);
    let join_db = Database::complete(&join_query, JOIN_N);
    let join_inputs: Vec<TaggedTuple> = join_db
        .tuples
        .iter()
        .enumerate()
        .flat_map(|(a, ts)| ts.iter().map(move |t| (a as u32, t.clone())))
        .collect();
    let join_outputs = join_db.join(&join_query).len() as f64;
    let join_rho = join_query.rho();
    let mat_a = Matrix::random(MATMUL_N as usize, 3);
    let mat_b = Matrix::random(MATMUL_N as usize, 4);
    let matmul_inputs = numeric_inputs(&mat_a, &mat_b);

    // The grid: (family index, job) pairs, one job per point.
    let mut jobs: Vec<(usize, PointJob<'_>)> = Vec::new();

    // Family 0 — Hamming distance 1 (§3): splitting at every divisor of b.
    for k in (1..=HAMMING_B).filter(|k| HAMMING_B.is_multiple_of(*k)) {
        let inputs = &hamming_inputs;
        jobs.push((
            0,
            Box::new(move || {
                let schema = DistanceDSplittingSchema::new(HAMMING_B, k, 1);
                let recipe = HammingProblem::distance_one(HAMMING_B).recipe();
                let name = MappingSchema::<HammingProblem>::name(&schema);
                let q = MappingSchema::<HammingProblem>::max_inputs_per_reducer(&schema);
                measure_point::<u64, (u64, u64), _>(q, inputs, &schema, &recipe, name, engine)
            }),
        ));
    }

    // Family 1 — triangles (§4): node partition at divisor group counts.
    for k in (1..=TRIANGLE_N).filter(|k| TRIANGLE_N.is_multiple_of(*k) && *k <= TRIANGLE_N / 2) {
        let inputs = triangle_graph.edges();
        jobs.push((
            1,
            Box::new(move || {
                let schema = NodePartitionSchema::new(TRIANGLE_N, k);
                let recipe = TriangleProblem::new(TRIANGLE_N).recipe();
                let name = MappingSchema::<TriangleProblem>::name(&schema);
                let q = schema.exact_max_load();
                measure_point::<_, [u32; 3], _>(q, inputs, &schema, &recipe, name, engine)
            }),
        ));
    }

    // Family 2 — sample graphs (§5.1–5.3): 4-cycle pattern, multiset
    // partition over k groups. The k = n point (one node per group) pushes
    // the measured load below |O|/|I|, where the unclamped g(q) = q^{s/2}
    // bound exceeds 1 — so the family's r ≥ bound check has teeth.
    for k in [1u32, 2, 3, 4, SAMPLE_N] {
        let inputs = sample_graph.edges();
        let pattern = c4.clone();
        jobs.push((
            2,
            Box::new(move || {
                let schema = MultisetPartitionSchema::new(pattern.clone(), SAMPLE_N, k);
                let problem = SampleGraphProblem::new(pattern, SAMPLE_N);
                let recipe = problem.recipe();
                let name = MappingSchema::<SampleGraphProblem>::name(&schema);
                let q = MappingSchema::<SampleGraphProblem>::max_inputs_per_reducer(&schema);
                measure_point::<_, Vec<(u32, u32)>, _>(q, inputs, &schema, &recipe, name, engine)
            }),
        ));
    }

    // Family 3 — 2-paths (§5.4): the per-node q = n point plus the
    // bucket-pair refinement at power-of-two bucket counts.
    {
        let inputs = two_path_graph.edges();
        jobs.push((
            3,
            Box::new(move || {
                let schema = PerNodeSchema { n: TWO_PATH_N };
                let recipe = TwoPathProblem::new(TWO_PATH_N).recipe();
                let name = MappingSchema::<TwoPathProblem>::name(&schema);
                let q = MappingSchema::<TwoPathProblem>::max_inputs_per_reducer(&schema);
                measure_point::<_, (u32, u32, u32), _>(q, inputs, &schema, &recipe, name, engine)
            }),
        ));
    }
    for k in [2u32, 4, 8] {
        let inputs = two_path_graph.edges();
        jobs.push((
            3,
            Box::new(move || {
                let schema = BucketPairSchema::new(TWO_PATH_N, k);
                let recipe = TwoPathProblem::new(TWO_PATH_N).recipe();
                let name = MappingSchema::<TwoPathProblem>::name(&schema);
                let q = MappingSchema::<TwoPathProblem>::max_inputs_per_reducer(&schema);
                measure_point::<_, (u32, u32, u32), _>(q, inputs, &schema, &recipe, name, engine)
            }),
        ));
    }

    // Family 4 — multiway joins (§5.5): the cycle query R(A,B) ⋈ S(B,C) ⋈
    // T(C,A) under symmetric Shares grids. g(q) = q^ρ by AGM (§5.5.1).
    // The s = n grid (one domain value per bucket) drives q low enough
    // that the unclamped n/(3√q) bound exceeds 1 — the non-vacuous point
    // of this family's r ≥ bound check.
    for s in [1u64, 2, 3, JOIN_N as u64] {
        let inputs = &join_inputs;
        let query = join_query.clone();
        let num_inputs = join_inputs.len() as f64;
        jobs.push((
            4,
            Box::new(move || {
                let schema = SharesSchema::new(query, vec![s, s, s]);
                let recipe =
                    LowerBoundRecipe::new(move |q| q.powf(join_rho), num_inputs, join_outputs);
                let name = format!("shares(cycle3, s={s})");
                // Declared budget: every reducer's grid cell holds at most
                // ⌈n/s⌉² tuples of each of the 3 relations.
                let cell = (JOIN_N as u64).div_ceil(s);
                let q = 3 * cell * cell;
                measure_point::<_, Vec<u32>, _>(q, inputs, &schema, &recipe, name, engine)
            }),
        ));
    }

    // Family 5 — matrix multiplication (§6): one-phase tiling at every
    // divisor tile size. r = 2n²/q exactly — the bound is tight.
    for s in (1..=MATMUL_N).filter(|s| MATMUL_N.is_multiple_of(*s)) {
        let inputs = &matmul_inputs;
        jobs.push((
            5,
            Box::new(move || {
                let schema = OnePhaseSchema::new(MATMUL_N, s);
                let recipe = MatMulProblem::new(MATMUL_N).recipe();
                let name = MappingSchema::<MatMulProblem>::name(&schema);
                let q = schema.q();
                measure_point::<_, (u32, u32, [u8; 8]), _>(
                    q, inputs, &schema, &recipe, name, engine,
                )
            }),
        ));
    }

    // Fan the grid out, then regroup by family in grid order.
    let families_meta: [(&'static str, String); 6] = [
        (
            "hamming-d1",
            format!("all {HAMMING_B}-bit strings (|I| = {})", 1u64 << HAMMING_B),
        ),
        (
            "triangles",
            format!(
                "complete graph K_{TRIANGLE_N} ({} edges)",
                triangle_graph.num_edges()
            ),
        ),
        (
            "sample-c4",
            format!(
                "4-cycle pattern in K_{SAMPLE_N} ({} edges)",
                sample_graph.num_edges()
            ),
        ),
        (
            "two-path",
            format!(
                "complete graph K_{TWO_PATH_N} ({} edges)",
                two_path_graph.num_edges()
            ),
        ),
        (
            "join-cycle3",
            format!(
                "cycle query, complete instance on domain {JOIN_N} ({} tuples)",
                join_inputs.len()
            ),
        ),
        (
            "matmul",
            format!(
                "{MATMUL_N}×{MATMUL_N} dense pair (|I| = {})",
                matmul_inputs.len()
            ),
        ),
    ];
    let family_of: Vec<usize> = jobs.iter().map(|(f, _)| *f).collect();
    let points = run_jobs(
        jobs.into_iter().map(|(_, j)| j).collect(),
        config.sweep_workers,
    );

    let mut families: Vec<FamilyCurve> = families_meta
        .into_iter()
        .map(|(family, instance)| FamilyCurve {
            family,
            instance,
            points: Vec::new(),
        })
        .collect();
    for (f, p) in family_of.into_iter().zip(points) {
        families[f].points.push(p);
    }
    for fam in &mut families {
        // Present each curve in ascending q (ties broken by name so the
        // order is total and worker-count independent).
        fam.points
            .sort_by(|a, b| a.q.cmp(&b.q).then_with(|| a.algorithm.cmp(&b.algorithm)));
    }
    SweepReport {
        engine_workers: config.engine.effective_workers(),
        families,
    }
}

/// Escapes a string for a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number (shortest round-trip form).
fn json_num(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        // NaN/∞ cannot appear in valid JSON; the sweep never produces
        // them, but fail loudly rather than emit garbage.
        panic!("non-finite value {x} in sweep JSON");
    }
}

impl SweepReport {
    fn json(&self, execution_metadata: bool) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"subsystem\": \"frontier_sweep\",\n");
        if execution_metadata {
            out.push_str(&format!("  \"engine_workers\": {},\n", self.engine_workers));
        }
        out.push_str("  \"families\": [\n");
        for (fi, fam) in self.families.iter().enumerate() {
            out.push_str(&format!(
                "    {{\n      \"family\": \"{}\",\n      \"instance\": \"{}\",\n      \"points\": [\n",
                json_escape(fam.family),
                json_escape(&fam.instance)
            ));
            for (pi, p) in fam.points.iter().enumerate() {
                out.push_str(&format!(
                    "        {{\"algorithm\": \"{}\", \"q_declared\": {}, \"q\": {}, \"r\": {}, \"bound\": {}, \"gap\": {}, \"load_skew\": {}, \"outputs\": {}",
                    json_escape(&p.algorithm),
                    p.q_declared,
                    p.q,
                    json_num(p.r),
                    json_num(p.bound),
                    json_num(p.gap),
                    json_num(p.load_skew),
                    p.outputs,
                ));
                if execution_metadata {
                    out.push_str(&format!(
                        ", \"partition_skew\": {}, \"wall_ms\": {:.3}",
                        json_num(p.partition_skew),
                        p.wall.as_secs_f64() * 1e3
                    ));
                }
                out.push('}');
                if pi + 1 < fam.points.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str("      ]\n    }");
            if fi + 1 < self.families.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// The deterministic JSON serialisation: everything the sweep
    /// *computed*, nothing about how it was executed. Byte-identical for
    /// every sweep worker count and every engine worker count.
    pub fn semantic_json(&self) -> String {
        self.json(false)
    }

    /// The full JSON serialisation: the semantic fields plus per-point
    /// `partition_skew` and `wall_ms` and the engine worker count. The
    /// extra fields describe one particular execution and vary run to run.
    pub fn full_json(&self) -> String {
        self.json(true)
    }

    /// Renders the measured-vs-analytic comparison table.
    pub fn table(&self) -> String {
        let mut t = Table::new(&[
            "family",
            "algorithm",
            "q(decl)",
            "q",
            "r",
            "bound",
            "gap",
            "skew",
            "outputs",
            "wall(ms)",
        ]);
        for fam in &self.families {
            for p in &fam.points {
                t.row(vec![
                    fam.family.to_string(),
                    p.algorithm.clone(),
                    p.q_declared.to_string(),
                    p.q.to_string(),
                    fmt(p.r),
                    fmt(p.bound),
                    fmt(p.gap),
                    fmt(p.load_skew),
                    p.outputs.to_string(),
                    format!("{:.3}", p.wall.as_secs_f64() * 1e3),
                ]);
            }
        }
        t.render()
    }
}

/// The `repro frontier` report: the comparison table (wall-clock column
/// included) plus the *semantic* JSON.
///
/// The JSON block is deliberately [`semantic_json`](SweepReport::semantic_json):
/// the repro binary's long-standing contract is byte-identical output
/// across runs, and only the table's human-facing `wall(ms)` column is
/// exempt. Execution metadata (`wall_ms`, `partition_skew`,
/// `engine_workers`) is available programmatically via
/// [`SweepReport::full_json`].
pub fn report() -> String {
    let report = sweep_all(&SweepConfig::default());
    format!(
        "Empirical (q, r) frontier sweep — every family's constructive schemas \
         executed\nthrough the engine on its complete model instance, versus the \
         §2.4 lower bound.\ngap = measured r / analytic bound (≥ 1 for every valid \
         schema; 1 = optimal).\n\n{}\nJSON (semantic curve — deterministic across \
         runs and worker counts; wall-clock\nand partition skew are execution \
         metadata, see the table / SweepReport::full_json):\n\n{}",
        report.table(),
        report.semantic_json()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config(sweep_workers: usize) -> SweepConfig {
        SweepConfig {
            sweep_workers,
            engine: EngineConfig::sequential(),
        }
    }

    #[test]
    fn all_families_present_with_nonempty_grids() {
        let rep = sweep_all(&quick_config(2));
        let names: Vec<&str> = rep.families.iter().map(|f| f.family).collect();
        assert_eq!(
            names,
            vec![
                "hamming-d1",
                "triangles",
                "sample-c4",
                "two-path",
                "join-cycle3",
                "matmul"
            ]
        );
        for fam in &rep.families {
            assert!(
                fam.points.len() >= 3,
                "{}: grid too small ({} points)",
                fam.family,
                fam.points.len()
            );
        }
    }

    #[test]
    fn measured_r_dominates_bound_everywhere() {
        // The acceptance gate: on the complete instance the §2.4 theorem
        // guarantees r ≥ bound at every grid point.
        let rep = sweep_all(&quick_config(4));
        for fam in &rep.families {
            for p in &fam.points {
                assert!(
                    p.r >= p.bound - 1e-9,
                    "{} / {}: measured r={} below bound={}",
                    fam.family,
                    p.algorithm,
                    p.r,
                    p.bound
                );
                assert!(p.gap >= 1.0 - 1e-9);
                assert!((p.gap - bound_gap(p.r, p.bound)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn curves_ascend_in_q_and_respect_declared_budgets() {
        let rep = sweep_all(&quick_config(3));
        for fam in &rep.families {
            for w in fam.points.windows(2) {
                assert!(w[1].q >= w[0].q, "{}: curve not sorted by q", fam.family);
            }
            for p in &fam.points {
                assert!(
                    p.q <= p.q_declared,
                    "{} / {}: measured load {} exceeds declared budget {}",
                    fam.family,
                    p.algorithm,
                    p.q,
                    p.q_declared
                );
            }
        }
    }

    #[test]
    fn optimal_families_sit_exactly_on_the_bound() {
        let rep = sweep_all(&quick_config(2));
        // Hamming splitting and one-phase matmul are exactly optimal at
        // every grid point; the 2-path per-node point is too.
        for family in ["hamming-d1", "matmul"] {
            let fam = rep.families.iter().find(|f| f.family == family).unwrap();
            for p in &fam.points {
                assert!(
                    (p.gap - 1.0).abs() < 1e-9,
                    "{family} / {}: gap {} ≠ 1",
                    p.algorithm,
                    p.gap
                );
            }
        }
        let two_path = rep
            .families
            .iter()
            .find(|f| f.family == "two-path")
            .unwrap();
        let per_node = two_path
            .points
            .iter()
            .find(|p| p.algorithm.starts_with("per-node"))
            .unwrap();
        assert!((per_node.gap - 1.0).abs() < 1e-9);
    }

    #[test]
    fn table_renders_every_point() {
        let rep = sweep_all(&quick_config(2));
        let t = rep.table();
        assert!(t.contains("wall(ms)"));
        let total: usize = rep.families.iter().map(|f| f.points.len()).sum();
        // Header + separator + one line per point.
        assert_eq!(t.lines().count(), 2 + total);
    }

    #[test]
    fn json_shapes() {
        let rep = sweep_all(&quick_config(2));
        let semantic = rep.semantic_json();
        let full = rep.full_json();
        assert!(semantic.contains("\"frontier_sweep\""));
        assert!(!semantic.contains("wall_ms"));
        assert!(!semantic.contains("partition_skew"));
        assert!(full.contains("wall_ms"));
        assert!(full.contains("partition_skew"));
        assert!(full.contains("engine_workers"));
        // Balanced braces/brackets — cheap well-formedness check given
        // the serializer never emits braces inside strings.
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(
                semantic.matches(open).count(),
                semantic.matches(close).count()
            );
        }
    }

    #[test]
    fn json_escape_controls_and_quotes() {
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\ny"), "x\\u000ay");
    }
}
