//! Re-records the committed benchmark baselines.
//!
//! ```text
//! cargo run --release -p mr-bench --bin record_bench [out_dir]
//! ```
//!
//! Writes `BENCH_shuffle.json`, `BENCH_frontier.json`,
//! `BENCH_plan.json`, `BENCH_dag.json`, `BENCH_delta.json`,
//! `BENCH_pool.json` and `BENCH_obs.json` into
//! `out_dir` (default: the current directory), each stamped with the
//! recording machine's core count and the UTC date. Run it from the
//! workspace root on a quiet machine to refresh the committed baselines.

use mr_bench::baseline::{
    record_dag, record_delta, record_frontier, record_obs, record_plan, record_pool,
    record_shuffle, MachineStamp,
};
use std::path::Path;

fn main() {
    let out_dir = std::env::args().nth(1).unwrap_or_else(|| ".".to_string());
    let out_dir = Path::new(&out_dir);
    let stamp = MachineStamp::detect();
    eprintln!(
        "recording baselines on {} core(s), {} (1 warm-up + 10 samples per configuration)",
        stamp.cores, stamp.date
    );

    eprint!("engine_shuffle ... ");
    let (shuffle_json, uniform_w1) = record_shuffle(&stamp);
    eprintln!("uniform_150k workers=1 mean {uniform_w1:.2} ms");

    eprint!("engine_frontier ... ");
    let (frontier_json, frontier_w1) = record_frontier(&stamp);
    eprintln!("sweep_all workers=1 mean {frontier_w1:.2} ms");

    eprint!("engine_plan ... ");
    let plan_json = record_plan(&stamp, frontier_w1);
    eprintln!("done");

    eprint!("engine_dag ... ");
    let dag_json = record_dag(&stamp);
    eprintln!("done");

    eprint!("engine_delta ... ");
    let delta_json = record_delta(&stamp);
    eprintln!("done");

    eprint!("engine_pool ... ");
    let pool_json = record_pool(&stamp);
    eprintln!("done");

    eprint!("engine_obs ... ");
    let obs_json = record_obs(&stamp);
    eprintln!("done");

    for (name, json) in [
        ("BENCH_shuffle.json", &shuffle_json),
        ("BENCH_frontier.json", &frontier_json),
        ("BENCH_plan.json", &plan_json),
        ("BENCH_dag.json", &dag_json),
        ("BENCH_delta.json", &delta_json),
        ("BENCH_pool.json", &pool_json),
        ("BENCH_obs.json", &obs_json),
    ] {
        let path = out_dir.join(name);
        std::fs::write(&path, json).unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
        eprintln!("wrote {}", path.display());
    }
}
