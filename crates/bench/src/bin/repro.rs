//! Regenerates every table and figure of the paper.
//!
//! ```sh
//! cargo run --release -p mr-bench --bin repro            # everything
//! cargo run --release -p mr-bench --bin repro -- fig1    # one artifact
//! cargo run --release -p mr-bench --bin repro -- frontier # empirical sweep
//! cargo run --release -p mr-bench --bin repro -- frontier hamming-d1 matmul
//! cargo run --release -p mr-bench --bin repro -- frontier triangles-gnm full
//! cargo run --release -p mr-bench --bin repro -- plan     # cost-based planner
//! cargo run --release -p mr-bench --bin repro -- plan matmul --q-budget 32
//! cargo run --release -p mr-bench --bin repro -- delta    # incremental execution
//! cargo run --release -p mr-bench --bin repro -- delta triangles small
//! cargo run --release -p mr-bench --bin repro -- dag      # round-structure search
//! cargo run --release -p mr-bench --bin repro -- dag matmul --q-budget 8
//! cargo run --release -p mr-bench --bin repro -- trace hamming-d1     # record a run
//! cargo run --release -p mr-bench --bin repro -- trace join-agg --out t.json
//! cargo run --release -p mr-bench --bin repro -- plan --trace  # traced planner run
//! cargo run --release -p mr-bench --bin repro -- list    # ids + descriptions
//! ```
//!
//! Tokens after `frontier`/`plan`-style selectors: any token naming an
//! experiment id selects that experiment; any token naming a family (or a
//! scale preset `small`/`default`/`full`) selects within the `frontier`
//! experiment — or within `plan`/`delta`/`dag`/`trace` when one of those
//! is chosen — and implies `frontier` otherwise. A DAG-workload token
//! like `join-agg` that no registry family answers to implies `dag`.
//! `--q-budget N` belongs to `plan` (or `dag` when that is chosen) and
//! implies `plan` otherwise. `--trace` asks `plan`/`dag`/`delta` to
//! record themselves with mr-obs (implying `plan` when none is chosen);
//! `--out PATH` belongs to `trace` and implies it. Unknown tokens abort
//! with the full vocabulary.

use mr_bench::experiments::{self, plan, Experiment};
use mr_bench::sweep;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let all = experiments::all();

    if args.first().map(String::as_str) == Some("list") {
        println!("available experiments:");
        let width = all.iter().map(|e| e.id.len()).max().unwrap_or(0);
        for e in &all {
            println!("  {:width$}  {}", e.id, e.description);
        }
        return;
    }

    // Partition tokens: experiment ids, shared family/scale selectors,
    // plan-only flags. Unknown tokens are an error that prints the whole
    // vocabulary.
    let mut ids: Vec<&str> = Vec::new();
    let mut selectors: Vec<String> = Vec::new();
    let mut plan_extra: Vec<String> = Vec::new();
    let mut out_extra: Vec<String> = Vec::new();
    let mut trace_flag = false;
    let mut unknown: Vec<&str> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if all.iter().any(|e| e.id == a.as_str()) {
            ids.push(a);
        } else if a == experiments::trace::TRACE_FLAG {
            trace_flag = true;
        } else if a == experiments::trace::OUT_FLAG {
            out_extra.push(a.clone());
            if let Some(value) = args.get(i + 1) {
                out_extra.push(value.clone());
                i += 1;
            }
        } else if plan::is_plan_flag(a) {
            plan_extra.push(a.clone());
            if let Some(value) = args.get(i + 1) {
                plan_extra.push(value.clone());
                i += 1;
            }
        } else if sweep::is_selector(a) || experiments::dag::is_dag_workload(a) {
            selectors.push(a.clone());
        } else {
            unknown.push(a);
        }
        i += 1;
    }
    // The trace experiment resolves its own workload vocabulary (unique
    // prefixes like `hamming` included), so when it is chosen the
    // leftover tokens are its to judge, not ours to reject.
    if ids.contains(&"trace") {
        selectors.extend(unknown.drain(..).map(str::to_string));
    }
    if !unknown.is_empty() {
        eprintln!("unknown experiment(s) {unknown:?}");
        eprintln!(
            "available experiments: {}",
            all.iter().map(|e| e.id).collect::<Vec<_>>().join(", ")
        );
        eprintln!(
            "frontier selectors: {} (scales: {})",
            sweep::available_families().join(", "),
            sweep::SCALE_TOKENS.join(", ")
        );
        eprintln!(
            "plan flags: {} N; trace flags: {}, {} PATH",
            plan::Q_BUDGET_FLAG,
            experiments::trace::TRACE_FLAG,
            experiments::trace::OUT_FLAG
        );
        std::process::exit(1);
    }
    // A budget flag implies the plan experiment; a dag-only workload
    // token (`join-agg`) implies the dag experiment; `--out` implies the
    // trace experiment; `--trace` asks a chosen plan/dag/delta run to
    // record itself and implies plan when none is chosen; bare
    // family/scale selectors imply the frontier experiment unless
    // plan/dag/delta/trace claimed them.
    if selectors
        .iter()
        .any(|s| experiments::dag::is_dag_workload(s) && !sweep::is_selector(s))
        && !ids.contains(&"dag")
        && !ids.contains(&"trace")
    {
        ids.push("dag");
    }
    if !out_extra.is_empty() && !ids.contains(&"trace") {
        ids.push("trace");
    }
    if !plan_extra.is_empty() && !ids.contains(&"plan") && !ids.contains(&"dag") {
        ids.push("plan");
    }
    if trace_flag && !ids.contains(&"plan") && !ids.contains(&"dag") && !ids.contains(&"delta") {
        ids.push("plan");
    }
    if !selectors.is_empty()
        && !ids.contains(&"plan")
        && !ids.contains(&"frontier")
        && !ids.contains(&"delta")
        && !ids.contains(&"dag")
        && !ids.contains(&"trace")
    {
        ids.push("frontier");
    }

    let selected: Vec<&Experiment> = if ids.is_empty() {
        all.iter().collect()
    } else {
        all.iter().filter(|e| ids.contains(&e.id)).collect()
    };

    let with_trace = |mut tokens: Vec<String>| {
        if trace_flag {
            tokens.push(experiments::trace::TRACE_FLAG.to_string());
        }
        tokens
    };
    for e in selected {
        let extra: Vec<String> = match e.id {
            "frontier" => selectors.clone(),
            "delta" => with_trace(selectors.clone()),
            "plan" | "dag" => {
                with_trace(selectors.iter().chain(plan_extra.iter()).cloned().collect())
            }
            "trace" => selectors.iter().chain(out_extra.iter()).cloned().collect(),
            _ => Vec::new(),
        };
        println!("================================================================");
        println!("[{}]", e.id);
        println!("================================================================");
        println!("{}", e.run(&extra));
    }
}
