//! Regenerates every table and figure of the paper.
//!
//! ```sh
//! cargo run --release -p mr-bench --bin repro            # everything
//! cargo run --release -p mr-bench --bin repro -- fig1    # one artifact
//! cargo run --release -p mr-bench --bin repro -- frontier # empirical sweep
//! cargo run --release -p mr-bench --bin repro -- frontier hamming-d1 matmul
//! cargo run --release -p mr-bench --bin repro -- frontier triangles-gnm full
//! cargo run --release -p mr-bench --bin repro -- list    # ids + descriptions
//! ```
//!
//! Tokens after `frontier`-style selectors: any token naming an
//! experiment id selects that experiment; any token naming a frontier
//! family (or a scale preset `small`/`default`/`full`) selects within
//! the `frontier` experiment and implies it. Unknown tokens abort with
//! the full vocabulary.

use mr_bench::experiments::{self, Experiment};
use mr_bench::sweep;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let all = experiments::all();

    if args.first().map(String::as_str) == Some("list") {
        println!("available experiments:");
        let width = all.iter().map(|e| e.id.len()).max().unwrap_or(0);
        for e in &all {
            println!("  {:width$}  {}", e.id, e.description);
        }
        return;
    }

    // Partition tokens: experiment ids vs frontier selectors. Unknown
    // tokens are an error that prints the whole vocabulary.
    let mut ids: Vec<&str> = Vec::new();
    let mut frontier_args: Vec<String> = Vec::new();
    let mut unknown: Vec<&str> = Vec::new();
    for a in &args {
        if all.iter().any(|e| e.id == a.as_str()) {
            ids.push(a);
        } else if sweep::is_selector(a) {
            frontier_args.push(a.clone());
        } else {
            unknown.push(a);
        }
    }
    if !unknown.is_empty() {
        eprintln!("unknown experiment(s) {unknown:?}");
        eprintln!(
            "available experiments: {}",
            all.iter().map(|e| e.id).collect::<Vec<_>>().join(", ")
        );
        eprintln!(
            "frontier selectors: {} (scales: {})",
            sweep::available_families().join(", "),
            sweep::SCALE_TOKENS.join(", ")
        );
        std::process::exit(1);
    }
    // Frontier selectors imply the frontier experiment.
    if !frontier_args.is_empty() && !ids.contains(&"frontier") {
        ids.push("frontier");
    }

    let selected: Vec<&Experiment> = if ids.is_empty() {
        all.iter().collect()
    } else {
        all.iter().filter(|e| ids.contains(&e.id)).collect()
    };

    for e in selected {
        println!("================================================================");
        println!("[{}]", e.id);
        println!("================================================================");
        println!("{}", e.run(&frontier_args));
    }
}
