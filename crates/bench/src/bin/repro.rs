//! Regenerates every table and figure of the paper.
//!
//! ```sh
//! cargo run --release -p mr-bench --bin repro            # everything
//! cargo run --release -p mr-bench --bin repro -- fig1    # one artifact
//! cargo run --release -p mr-bench --bin repro -- frontier # empirical sweep
//! cargo run --release -p mr-bench --bin repro -- list    # list ids
//! ```

use mr_bench::experiments::{self, Experiment};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let all = experiments::all();

    if args.first().map(String::as_str) == Some("list") {
        println!("available experiments:");
        for (id, _) in &all {
            println!("  {id}");
        }
        return;
    }

    let selected: Vec<&Experiment> = if args.is_empty() {
        all.iter().collect()
    } else {
        let picked: Vec<_> = all
            .iter()
            .filter(|(id, _)| args.iter().any(|a| a == id))
            .collect();
        if picked.is_empty() {
            eprintln!("unknown experiment(s) {args:?}; try `repro list`");
            std::process::exit(1);
        }
        picked
    };

    for (id, run) in selected {
        println!("================================================================");
        println!("[{id}]");
        println!("================================================================");
        println!("{}", run());
    }
}
