//! **Figure 1** — the Hamming-distance-1 tradeoff: the lower-bound
//! hyperbola `r = b/log₂q` and the Splitting-algorithm points that sit
//! exactly on it.

use crate::table::{fmt, Table};
use mr_core::model::validate_schema;
use mr_core::problems::hamming::{theorem32_lower_bound, HammingProblem, SplittingSchema};

/// The series of Figure 1 for a given `b`: `(c, log2 q, hyperbola, measured r)`.
pub fn series(b: u32) -> Vec<(u32, f64, f64, f64)> {
    let problem = HammingProblem::distance_one(b);
    (1..=b)
        .filter(|c| b.is_multiple_of(*c))
        .map(|c| {
            let schema = SplittingSchema::new(b, c);
            let report = validate_schema(&problem, &schema);
            assert!(report.is_valid(), "splitting c={c} invalid");
            let log_q = (schema.q() as f64).log2();
            (
                c,
                log_q,
                theorem32_lower_bound(b, schema.q() as f64),
                report.replication_rate,
            )
        })
        .collect()
}

/// Renders the figure as a table (each dot of Figure 1 as a row).
pub fn report() -> String {
    let b = 12;
    let mut t = Table::new(&[
        "c",
        "log2 q",
        "hyperbola b/log2 q",
        "r measured",
        "on curve",
    ]);
    for (c, log_q, bound, r) in series(b) {
        t.row(vec![
            c.to_string(),
            fmt(log_q),
            fmt(bound),
            fmt(r),
            ((r - bound).abs() < 1e-9).to_string(),
        ]);
    }
    format!(
        "Figure 1: Hamming-1 replication vs reducer size, b = {b} (paper §3.3)\n\
         Every Splitting point lies exactly on the lower-bound hyperbola.\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn every_point_is_on_the_curve() {
        for (c, _, bound, r) in super::series(12) {
            assert!((r - bound).abs() < 1e-9, "c={c}: {r} vs {bound}");
        }
    }

    #[test]
    fn report_has_all_divisors() {
        let r = super::report();
        assert_eq!(r.matches("true").count(), 6); // divisors of 12
    }
}
