//! **§4.2** — triangle finding on sparse data graphs: measured
//! replication tracks the rescaled lower bound `√(m/q)` within a constant
//! factor, and the distributed count always matches the serial baseline.

use crate::table::{fmt, Table};
use mr_core::problems::triangle::{sparse_lower_bound_r, NodePartitionSchema};
use mr_graph::{gen, subgraph, Graph};
use mr_sim::{run_schema, EngineConfig};

/// One measured configuration.
pub struct SparsePoint {
    /// Node-group count of the schema.
    pub k: u32,
    /// Measured max reducer load (edges).
    pub q: u64,
    /// Measured replication rate.
    pub r: f64,
    /// Lower bound √(m/q) at the measured q.
    pub bound: f64,
    /// Distributed triangle count equals the serial count.
    pub correct: bool,
}

/// Runs the node-partition algorithm on `g` for a given `k`.
pub fn measure(g: &Graph, k: u32) -> SparsePoint {
    let n = g.num_nodes() as u32;
    let schema = NodePartitionSchema::new(n, k);
    let (found, metrics) =
        run_schema(g.edges(), &schema, &EngineConfig::parallel(4)).expect("no q bound");
    let serial = subgraph::triangle_count(g);
    let q = metrics.load.max;
    SparsePoint {
        k,
        q,
        r: metrics.replication_rate(),
        bound: sparse_lower_bound_r(g.num_edges() as u64, q as f64),
        correct: found.len() as u64 == serial,
    }
}

/// Renders the §4.2 sweep.
pub fn report() -> String {
    let (n, m) = (200usize, 2000usize);
    let g = gen::gnm(n, m, 99);
    let mut t = Table::new(&[
        "k",
        "q measured",
        "r measured",
        "sqrt(m/q)",
        "ratio",
        "correct",
    ]);
    for k in [2u32, 3, 4, 6, 8, 12] {
        let p = measure(&g, k);
        t.row(vec![
            p.k.to_string(),
            p.q.to_string(),
            fmt(p.r),
            fmt(p.bound),
            fmt(p.r / p.bound),
            p.correct.to_string(),
        ]);
    }
    format!(
        "§4.2: sparse triangles, G(n={n}, m={m})\n\
         Replication tracks the sqrt(m/q) bound within a constant factor.\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_configurations_correct_and_within_constant() {
        let g = gen::gnm(100, 800, 3);
        for k in [2u32, 4, 8] {
            let p = measure(&g, k);
            assert!(p.correct, "k={k} wrong count");
            let ratio = p.r / p.bound;
            assert!(
                (0.3..6.0).contains(&ratio),
                "k={k}: ratio {ratio} out of constant-factor band"
            );
        }
    }

    #[test]
    fn replication_grows_with_k() {
        let g = gen::gnm(100, 800, 4);
        let r2 = measure(&g, 2).r;
        let r8 = measure(&g, 8).r;
        assert!(r8 > r2);
    }
}
