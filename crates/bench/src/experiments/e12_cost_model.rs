//! **§1.2 / Example 1.1** — using the tradeoff: build the measured
//! `r = f(q)` frontier for a problem, then minimise cluster cost
//! `a·r + b·q (+ c·q²)` for several price profiles, showing how the
//! optimal algorithm moves along the curve.

use crate::table::{fmt, Table};
use mr_core::cost::CostModel;
use mr_core::frontier::{as_cost_points, hamming_frontier, matmul_frontier};

/// Renders the §1.2 experiment on two frontiers.
pub fn report() -> String {
    let mut out = String::from(
        "§1.2: picking the algorithm with a cluster cost model a·r + b·q (+ c·q²)\n\n",
    );

    for (name, frontier) in [
        ("Hamming-1 (b=12)", hamming_frontier(12)),
        ("MatMul one-phase (n=16)", matmul_frontier(16)),
    ] {
        let pts = as_cost_points(&frontier);
        let mut t = Table::new(&["cluster profile", "chosen q", "chosen r", "total cost"]);
        let profiles: Vec<(&str, CostModel)> = vec![
            (
                "comm-heavy   (a=100, b=0.01)",
                CostModel::linear(100.0, 0.01),
            ),
            ("balanced     (a=1,   b=1)", CostModel::linear(1.0, 1.0)),
            ("compute-heavy(a=0.01,b=10)", CostModel::linear(0.01, 10.0)),
            (
                "latency-aware(+c·q², c=0.01)",
                CostModel::with_wall_clock(1.0, 0.1, 0.01),
            ),
        ];
        for (pname, model) in profiles {
            let (q, r, cost) = model.cheapest_point(&pts).expect("non-empty frontier");
            t.row(vec![pname.into(), fmt(q), fmt(r), fmt(cost)]);
        }
        out.push_str(&format!(
            "{name} frontier ({} Pareto points):\n",
            frontier.len()
        ));
        for p in &frontier {
            out.push_str(&format!(
                "  q={:<8} r={:<8} {}\n",
                p.q,
                fmt(p.r),
                p.algorithm
            ));
        }
        out.push('\n');
        out.push_str(&t.render());
        out.push('\n');
    }
    out.push_str(
        "Expensive communication pushes the optimum toward big reducers (r→1);\n\
         expensive compute or a wall-clock q² term pushes it toward small ones —\n\
         Example 1.1's conclusion, computed from measured frontiers.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mr_core::cost::CostModel;
    use mr_core::frontier::{as_cost_points, hamming_frontier};

    #[test]
    fn optimum_moves_monotonically_with_comm_price() {
        let pts = as_cost_points(&hamming_frontier(12));
        let mut last_q = 0.0;
        for a in [0.01, 1.0, 100.0, 10_000.0] {
            let model = CostModel::linear(a, 1.0);
            let (q, _, _) = model.cheapest_point(&pts).unwrap();
            assert!(q >= last_q, "q must grow with comm price: {q} < {last_q}");
            last_q = q;
        }
    }

    #[test]
    fn report_covers_both_frontiers() {
        let r = report();
        assert!(r.contains("Hamming-1"));
        assert!(r.contains("MatMul"));
        assert!(
            r.contains("weight-2d"),
            "weight points should be on the frontier"
        );
    }
}
