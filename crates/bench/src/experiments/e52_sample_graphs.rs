//! **§5.2/§5.3** — Alon-class sample graphs on sparse data: measured
//! replication vs the `(√(m/q))^{s−2}` edge-form lower bound, for 4-cycles
//! and 4-cliques, plus the Alon-class membership table of §5.1.

use crate::table::{fmt, Table};
use mr_core::problems::sample_graph::{
    enumerate_instances, lower_bound_edges, MultisetPartitionSchema,
};
use mr_graph::alon::is_alon_class;
use mr_graph::{gen, patterns, Graph};
use mr_sim::{run_schema, EngineConfig};

/// Measures the multiset-partition schema for `pattern` on `g` at `k`
/// groups: returns `(q, r, bound, correct)`.
pub fn measure(pattern: &Graph, g: &Graph, k: u32) -> (u64, f64, f64, bool) {
    let n = g.num_nodes() as u32;
    let schema = MultisetPartitionSchema::new(pattern.clone(), n, k);
    let (mut found, metrics) =
        run_schema(g.edges(), &schema, &EngineConfig::parallel(4)).expect("no q bound");
    found.sort_unstable();
    let expected = enumerate_instances(pattern, g);
    let q = metrics.load.max;
    let s = pattern.num_nodes();
    (
        q,
        metrics.replication_rate(),
        lower_bound_edges(g.num_edges() as u64, s, q as f64),
        found == expected,
    )
}

/// Renders the §5.1 membership table and the §5.2/§5.3 measurements.
pub fn report() -> String {
    // §5.1: which sample graphs are in the Alon class.
    let mut membership = Table::new(&["sample graph", "in Alon class"]);
    let cases: Vec<(&str, Graph)> = vec![
        ("triangle", patterns::triangle()),
        ("C4", patterns::cycle(4)),
        ("C5", patterns::cycle(5)),
        ("K4", patterns::clique(4)),
        ("path-2 (2 edges)", patterns::path(2)),
        ("path-3 (3 edges)", patterns::path(3)),
        ("star K1,3", patterns::star(3)),
        ("matching x2", patterns::matching(2)),
    ];
    for (name, g) in &cases {
        membership.row(vec![name.to_string(), is_alon_class(g).to_string()]);
    }

    // §5.2/§5.3 measurements.
    let (n, m) = (40usize, 300usize);
    let g = gen::gnm(n, m, 11);
    let mut t = Table::new(&[
        "pattern",
        "k",
        "q",
        "r measured",
        "(sqrt(m/q))^(s-2)",
        "correct",
    ]);
    for (name, pattern) in [("C4", patterns::cycle(4)), ("K4", patterns::clique(4))] {
        for k in [2u32, 3, 4] {
            let (q, r, bound, correct) = measure(&pattern, &g, k);
            t.row(vec![
                name.into(),
                k.to_string(),
                q.to_string(),
                fmt(r),
                fmt(bound),
                correct.to_string(),
            ]);
        }
    }

    format!(
        "§5.1: the Alon class (decomposition into edges / odd Hamiltonian cycles)\n\n{}\n\
         §5.2/§5.3: sample-graph finding on G(n={n}, m={m})\n\n{}",
        membership.render(),
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurements_correct() {
        let g = gen::gnm(25, 120, 2);
        for pattern in [patterns::cycle(4), patterns::clique(4)] {
            let (_, r, _, correct) = measure(&pattern, &g, 3);
            assert!(correct);
            assert!(r >= 1.0);
        }
    }

    #[test]
    fn membership_matches_paper() {
        let r = report();
        // path-2 and the star must be the non-Alon entries.
        assert!(r.contains("path-2 (2 edges)"));
        let lines: Vec<&str> = r.lines().collect();
        let p2 = lines.iter().find(|l| l.contains("path-2")).unwrap();
        assert!(p2.contains("false"));
        let tri = lines.iter().find(|l| l.contains("triangle")).unwrap();
        assert!(tri.contains("true"));
    }
}
