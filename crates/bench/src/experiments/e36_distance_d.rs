//! **§3.6** — larger Hamming distances: the generalised splitting
//! algorithm (`r = C(k,d)`) and the Ball-2 construction whose `Θ(q²)`
//! per-reducer coverage blocks any `O(q log q)` lower-bound argument.

use crate::table::{fmt, Table};
use mr_core::model::validate_schema;
use mr_core::problems::hamming::{
    lemma31_g, Ball2Schema, DistanceDSplittingSchema, HammingProblem,
};

/// Renders the §3.6 experiments.
pub fn report() -> String {
    let mut t = Table::new(&[
        "algorithm",
        "b",
        "d",
        "params",
        "q",
        "r measured",
        "r formula",
        "valid",
    ]);

    // Generalised splitting at several (k, d).
    for (b, k, d) in [(12u32, 4u32, 2u32), (12, 6, 2), (12, 3, 3), (8, 4, 2)] {
        let problem = HammingProblem::new(b, d);
        let schema = DistanceDSplittingSchema::new(b, k, d);
        let report = validate_schema(&problem, &schema);
        t.row(vec![
            "splitting-d".into(),
            b.to_string(),
            d.to_string(),
            format!("k={k}"),
            report.max_load.to_string(),
            fmt(report.replication_rate),
            format!("C(k,d) = {}", schema.replication()),
            report.is_valid().to_string(),
        ]);
    }

    // Ball-2 at several b.
    for b in [8u32, 10, 12] {
        let problem = HammingProblem::new(b, 2);
        let schema = Ball2Schema::new(b);
        let report = validate_schema(&problem, &schema);
        t.row(vec![
            "ball-2".into(),
            b.to_string(),
            "2".into(),
            "-".into(),
            report.max_load.to_string(),
            fmt(report.replication_rate),
            format!("b = {b}"),
            report.is_valid().to_string(),
        ]);
    }

    // The §3.6 obstruction: Ball-2 coverage vs the d=1 g(q).
    let mut obstruction = String::new();
    for b in [8u32, 16, 32] {
        let s = Ball2Schema::new(b);
        let q = b as f64;
        obstruction.push_str(&format!(
            "  q = {:>2}: Ball-2 covers C(b,2) = {:>4} outputs; (q/2)log2 q = {:>6}\n",
            b,
            s.outputs_per_reducer(),
            fmt(lemma31_g(q)),
        ));
    }

    format!(
        "§3.6: Hamming distances beyond 1\n\n{}\n\
         Why the d=1 recipe cannot extend to d=2 — a q-input reducer covers\n\
         Θ(q²) distance-2 outputs, not O(q log q):\n{obstruction}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn all_rows_valid() {
        assert!(!super::report().contains("false"));
    }

    #[test]
    fn obstruction_grows_quadratically() {
        use mr_core::problems::hamming::{lemma31_g, Ball2Schema};
        let s = Ball2Schema::new(32);
        assert!(s.outputs_per_reducer() as f64 > 5.0 * lemma31_g(32.0));
    }
}
