//! **§7.1 extension** — joins followed by aggregations, the open
//! direction the paper suggests for multi-round analysis. Compares the
//! naive two-round plan (full join shuffled to the aggregators) with
//! partial-aggregation push-down (the §6.3 mechanism applied to SQL).

use crate::table::{fmt, Table};
use mr_core::problems::join::aggregate::{count_by_first_var_naive, count_by_first_var_pushed};
use mr_core::problems::join::{Database, Query, SharesSchema};
use mr_sim::EngineConfig;

/// Renders the comparison for growing join output sizes.
pub fn report() -> String {
    let mut t = Table::new(&[
        "instance",
        "join rows",
        "naive total comm",
        "pushed total comm",
        "saving",
        "equal results",
    ]);
    let cases: Vec<(&str, Query, Database, Vec<u64>)> = vec![
        (
            "chain N=2, sparse",
            Query::chain(2),
            Database::random(&Query::chain(2), 24, 250, 3),
            vec![1, 4, 1],
        ),
        (
            "chain N=2, complete n=10",
            Query::chain(2),
            Database::complete(&Query::chain(2), 10),
            vec![1, 4, 1],
        ),
        (
            "chain N=3, dense",
            Query::chain(3),
            Database::random(&Query::chain(3), 12, 130, 9),
            vec![1, 2, 2, 1],
        ),
    ];
    for (name, query, db, shares) in cases {
        let schema = SharesSchema::new(query, shares);
        let cfg = EngineConfig::parallel(4);
        let (naive_counts, naive) = count_by_first_var_naive(&schema, &db, &cfg).unwrap();
        let (pushed_counts, pushed) = count_by_first_var_pushed(&schema, &db, &cfg).unwrap();
        let join_rows = naive.rounds[1].inputs;
        t.row(vec![
            name.into(),
            join_rows.to_string(),
            naive.total_communication().to_string(),
            pushed.total_communication().to_string(),
            fmt(naive.total_communication() as f64 / pushed.total_communication() as f64),
            (naive_counts == pushed_counts).to_string(),
        ]);
    }
    format!(
        "§7.1 extension: SELECT A0, COUNT(*) FROM (join) GROUP BY A0\n\
         Pushing partial counts into the join reducers is the §6.3 trick\n\
         applied to SQL: it never loses and wins by the output blow-up.\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn results_agree_and_push_down_wins_somewhere() {
        let r = super::report();
        assert!(!r.contains("false"), "{r}");
        // The complete-instance row must show a saving factor > 1.5.
        let line = r
            .lines()
            .find(|l| l.contains("complete"))
            .expect("complete row present");
        let cols: Vec<&str> = line.split_whitespace().collect();
        let saving: f64 = cols[cols.len() - 2].parse().unwrap();
        assert!(saving > 1.5, "saving {saving} too small: {line}");
    }
}
