//! **`repro trace`** — record one workload under the `mr-obs` span
//! recorder and export the trace: a per-span aggregate table, an
//! aggregated JSON snapshot (the [`crate::json`] dialect, so it parses
//! back through [`crate::json::parse`]), and the Chrome `trace_event`
//! JSON loadable in Perfetto or `chrome://tracing`.
//!
//! Arguments: one workload token — a registry family (`hamming-d1`,
//! `triangles`, …) or a DAG workload (`join-agg`, …); unique prefixes
//! work (`hamming` → `hamming-d1`), and families win name ties. A scale
//! token (`small`/`default`/`full`) picks the instance preset;
//! `--out PATH` writes the Chrome JSON to a file instead of stdout.
//!
//! Tracing is execution metadata by contract (determinism invariant #12):
//! the recorded run's outputs and semantic metrics are byte-identical to
//! an untraced run — `crates/sim/tests/obs_battery.rs` proves it.

use crate::json;
use crate::table::Table;
use mr_core::family::{family_by_name, Scale};
use mr_plan::{ClusterSpec, DagWorkload};
use mr_sim::EngineConfig;

/// The boolean flag that turns tracing on in `repro plan`/`dag`/`delta`.
pub const TRACE_FLAG: &str = "--trace";

/// The flag (value-consuming) that redirects this experiment's Chrome
/// JSON into a file.
pub const OUT_FLAG: &str = "--out";

/// What one trace run records.
enum Target {
    /// A registry family's most-partitioned grid point.
    Family(&'static str),
    /// A planned DAG workload, planned then executed.
    Dag(DagWorkload),
}

/// Every name the workload token vocabulary answers to, families first
/// (so a name shared with a DAG workload resolves to the family).
fn vocabulary() -> Vec<(&'static str, Target)> {
    let mut v: Vec<(&'static str, Target)> = crate::sweep::available_families()
        .into_iter()
        .map(|f| (f, Target::Family(f)))
        .collect();
    for w in DagWorkload::ALL {
        if !v.iter().any(|(name, _)| *name == w.name()) {
            v.push((w.name(), Target::Dag(w)));
        }
    }
    v
}

/// Resolves a workload token: exact match first, then unique prefix.
fn resolve(token: &str) -> Result<Target, String> {
    let mut vocab = vocabulary();
    if let Some(i) = vocab.iter().position(|(name, _)| *name == token) {
        return Ok(vocab.swap_remove(i).1);
    }
    let matches: Vec<usize> = vocab
        .iter()
        .enumerate()
        .filter(|(_, (name, _))| name.starts_with(token))
        .map(|(i, _)| i)
        .collect();
    match matches.as_slice() {
        [i] => Ok(vocab.swap_remove(*i).1),
        [] => Err(format!(
            "unknown trace workload '{token}'; workloads: {}",
            vocab
                .iter()
                .map(|(name, _)| *name)
                .collect::<Vec<_>>()
                .join(", ")
        )),
        many => Err(format!(
            "ambiguous trace workload '{token}' (matches {})",
            many.iter()
                .map(|&i| vocab[i].0)
                .collect::<Vec<_>>()
                .join(", ")
        )),
    }
}

/// Parses the experiment's tokens into (target, scale, output path).
fn parse(args: &[String]) -> Result<(Target, Scale, Option<String>), String> {
    let mut target: Option<Target> = None;
    let mut scale: Option<Scale> = None;
    let mut out_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(tok) = it.next() {
        if tok == OUT_FLAG {
            let value = it
                .next()
                .ok_or_else(|| format!("{OUT_FLAG} requires a path"))?;
            out_path = Some(value.clone());
        } else if let Some(sc) = crate::selectors::scale_token(tok) {
            crate::selectors::set_scale(&mut scale, sc)?;
        } else if target.is_some() {
            return Err(format!(
                "at most one workload may be traced (extra: '{tok}')"
            ));
        } else {
            target = Some(resolve(tok)?);
        }
    }
    Ok((
        target.unwrap_or(Target::Family("hamming-d1")),
        scale.unwrap_or_default(),
        out_path,
    ))
}

/// The human-readable trace summary shared by this experiment and the
/// `--trace` flag on `repro plan`/`dag`/`delta`: well-formedness
/// verdict, lane/event counts, and the per-span aggregate table.
pub fn trace_section(trace: &mr_obs::Trace) -> String {
    let mut out = String::from(
        "\nTrace (execution metadata — timings vary run to run; the semantic output\n\
         above is byte-identical with tracing on or off):\n",
    );
    match trace.check_well_formed() {
        Ok(()) => {
            out.push_str("  span tree: well-formed (every span closed, nested or disjoint)\n")
        }
        Err(e) => out.push_str(&format!("  span tree: MALFORMED — {e}\n")),
    }
    out.push_str(&format!(
        "  lanes: {}, events: {}\n\n",
        trace.lanes.len(),
        trace.total_events()
    ));
    let mut t = Table::new(&["span", "count", "total(ms)", "max(ms)"]);
    for (name, agg) in trace.aggregate() {
        t.row(vec![
            name,
            agg.count.to_string(),
            format!("{:.3}", agg.total.as_secs_f64() * 1e3),
            format!("{:.3}", agg.max.as_secs_f64() * 1e3),
        ]);
    }
    out.push_str(&t.render());
    out
}

/// The aggregated snapshot in the repro JSON dialect: span aggregates
/// plus the global metrics-hub counters, round-trippable through
/// [`json::parse`]. Timings make it execution metadata, not semantic
/// output.
fn snapshot_json(workload: &str, workers: usize, trace: &mr_obs::Trace) -> String {
    let mut out = String::from("{\n  \"subsystem\": \"trace\",\n");
    out.push_str(&format!(
        "  \"workload\": \"{}\",\n  \"workers\": {},\n  \"events\": {},\n  \"spans\": [\n",
        json::escape(workload),
        workers,
        trace.total_events()
    ));
    let aggregates = trace.aggregate();
    for (i, (name, agg)) in aggregates.iter().enumerate() {
        let mut obj = json::Obj::new();
        obj.str("name", name)
            .int("count", agg.count)
            .num("total_us", agg.total.as_secs_f64() * 1e6)
            .num("max_us", agg.max.as_secs_f64() * 1e6);
        out.push_str("    ");
        out.push_str(&obj.compact());
        if i + 1 < aggregates.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ],\n  \"counters\": ");
    let mut counters = json::Obj::new();
    for (name, value) in mr_obs::global().counters() {
        counters.int(&name, value);
    }
    out.push_str(&counters.compact());
    out.push_str("\n}\n");
    out
}

fn run(args: &[String]) -> Result<String, String> {
    let (target, scale, out_path) = parse(args)?;
    let workers = 4;
    let engine = EngineConfig::parallel(workers);
    let (label, trace) = match target {
        Target::Family(name) => {
            let fam = family_by_name(name, scale).expect("trace vocabulary matches the registry");
            // The most-partitioned grid point, like `repro delta`: the
            // point with the most per-partition work to make visible.
            let point = (0..fam.grid().len())
                .max_by_key(|&p| fam.census(p).reducers)
                .expect("grids are non-empty");
            let schema = fam.grid()[point].schema.clone();
            let (fp, trace) = mr_obs::record(|| fam.run(point, &engine));
            (
                format!(
                    "family {name} / {schema} — {} inputs, q={}, r={:.3}",
                    fam.num_inputs(),
                    fp.measured.q,
                    fp.measured.r
                ),
                trace,
            )
        }
        Target::Dag(w) => {
            let cluster = ClusterSpec::default();
            let (outcome, trace) = mr_obs::record(|| {
                mr_plan::plan_dag(w, &cluster, scale)
                    .map_err(|e| e.to_string())
                    .and_then(|plan| plan.execute_with(&engine).map_err(|e| e.to_string()))
            });
            let report = outcome?;
            (
                format!(
                    "dag workload {} / {} — {} rounds, depth {}, {} outputs",
                    w.name(),
                    report.plan.schema,
                    report.plan.dag.rounds.len(),
                    report.plan.dag.depth(),
                    report.outputs
                ),
                trace,
            )
        }
    };

    let workload = label.split(" — ").next().unwrap_or(&label).to_string();
    let mut out = format!(
        "Structured trace (mr-obs): one recorded run, exported three ways.\n\
         Recorded: {label}; engine: {workers} workers on the resident pool.\n\
         Everything below is execution metadata — the run's outputs and semantic\n\
         metrics are byte-identical with the recorder on or off (invariant #12).\n",
    );
    out.push_str(&trace_section(&trace));

    out.push_str("\nAggregated JSON snapshot (parses back through mr_bench::json::parse):\n\n");
    out.push_str(&snapshot_json(&workload, workers, &trace));

    let chrome = trace.chrome_json();
    match out_path {
        Some(path) => {
            std::fs::write(&path, &chrome).map_err(|e| format!("cannot write {path}: {e}"))?;
            out.push_str(&format!(
                "\nChrome trace_event JSON written to {path} ({} bytes).\n\
                 Open it at https://ui.perfetto.dev (Open trace file) or chrome://tracing.\n",
                chrome.len()
            ));
        }
        None => {
            out.push_str(
                "\nChrome trace_event JSON (save to a file, or re-run with --out PATH;\n\
                 open in https://ui.perfetto.dev or chrome://tracing):\n\n",
            );
            out.push_str(&chrome);
        }
    }
    Ok(out)
}

/// The `repro trace` runner: selector errors become the report text (the
/// repro driver validates most tokens up front, so this is a backstop).
pub fn report_args(args: &[String]) -> String {
    run(args).unwrap_or_else(|e| format!("trace selection error: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(tokens: &[&str]) -> Vec<String> {
        tokens.iter().map(|t| t.to_string()).collect()
    }

    #[test]
    fn hamming_prefix_traces_the_whole_execution_stack() {
        let out = report_args(&args(&["hamming", "small"]));
        assert!(out.contains("family hamming-d1"), "{out}");
        assert!(out.contains("span tree: well-formed"), "{out}");
        for span in ["engine.map", "engine.shuffle", "engine.reduce"] {
            assert!(out.contains(span), "{span} missing:\n{out}");
        }
        assert!(out.contains("\"traceEvents\""), "{out}");
    }

    #[test]
    fn dag_workloads_are_traceable_too() {
        let out = report_args(&args(&["join-agg", "small"]));
        assert!(out.contains("dag workload join-agg"), "{out}");
        assert!(out.contains("dag.execute"), "{out}");
        assert!(out.contains("dag.run"), "{out}");
    }

    #[test]
    fn snapshot_json_parses_back() {
        let out = report_args(&args(&["triangles", "small"]));
        let start = out.find("{\n  \"subsystem\": \"trace\"").expect("snapshot");
        let snapshot = &out[start..out[start..].find("\n}\n").unwrap() + start + 3];
        let value = json::parse(snapshot).expect("snapshot is valid JSON");
        assert_eq!(
            value.get("subsystem").and_then(|v| v.as_str()),
            Some("trace")
        );
        assert!(value.get("spans").is_some());
        assert!(value.get("counters").is_some());
    }

    #[test]
    fn chrome_json_lands_in_the_out_file() {
        let path = std::env::temp_dir().join("mr-obs-trace-test.json");
        let path_str = path.to_string_lossy().to_string();
        let out = report_args(&args(&["two-path", "small", OUT_FLAG, &path_str]));
        assert!(out.contains("written to"), "{out}");
        let written = std::fs::read_to_string(&path).expect("file written");
        assert!(written.contains("\"traceEvents\""));
        assert!(json::parse(&written).is_ok(), "chrome JSON must parse");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bad_tokens_are_reported_with_the_vocabulary() {
        let out = report_args(&args(&["bogus"]));
        assert!(out.contains("trace selection error"), "{out}");
        assert!(out.contains("hamming-d1"), "{out}");
        let out2 = report_args(&args(&[OUT_FLAG]));
        assert!(out2.contains("requires a path"), "{out2}");
        let out3 = report_args(&args(&["hamming-d1", "triangles"]));
        assert!(out3.contains("at most one workload"), "{out3}");
    }
}
