//! **§5.4** — 2-paths: the per-node algorithm at `q = n` and the
//! bucket-pair algorithm for `q < n`, measured against the `2n/q` lower
//! bound (clamped at 1).

use crate::table::{fmt, Table};
use mr_core::model::validate_schema;
use mr_core::problems::two_path::{lower_bound_r, BucketPairSchema, PerNodeSchema, TwoPathProblem};

/// Renders the §5.4 sweep on the complete instance (exhaustive
/// validation, exact replication rates).
pub fn report() -> String {
    let n = 60u32;
    let problem = TwoPathProblem::new(n);
    let mut t = Table::new(&[
        "algorithm",
        "k",
        "q (max load)",
        "r measured",
        "max(1, 2n/q)",
        "ratio",
        "valid",
    ]);

    // q = n point: per-node schema.
    {
        let schema = PerNodeSchema { n };
        let rep = validate_schema(&problem, &schema);
        let bound = lower_bound_r(n, rep.max_load as f64).max(1.0);
        t.row(vec![
            "per-node".into(),
            "-".into(),
            rep.max_load.to_string(),
            fmt(rep.replication_rate),
            fmt(bound),
            fmt(rep.replication_rate / bound),
            rep.is_valid().to_string(),
        ]);
    }

    // Bucket-pair for several k.
    for k in [2u32, 3, 4, 6, 10] {
        let schema = BucketPairSchema::new(n, k);
        let rep = validate_schema(&problem, &schema);
        let bound = lower_bound_r(n, rep.max_load as f64).max(1.0);
        t.row(vec![
            "bucket-pair".into(),
            k.to_string(),
            rep.max_load.to_string(),
            fmt(rep.replication_rate),
            fmt(bound),
            fmt(rep.replication_rate / bound),
            rep.is_valid().to_string(),
        ]);
    }

    format!(
        "§5.4: 2-paths on n = {n} nodes (complete instance, exhaustive)\n\
         The algorithm achieves ~2k against the bound ~k: a factor-2 match.\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn all_rows_valid_and_within_factor_three() {
        let r = super::report();
        assert!(!r.contains("false"), "{r}");
        // Parse ratio column: all ratios bounded by 3.
        for line in r.lines().skip(5) {
            if line.contains("bucket-pair") || line.contains("per-node") {
                let cols: Vec<&str> = line.split_whitespace().collect();
                let ratio: f64 = cols[cols.len() - 2].parse().unwrap();
                assert!(ratio <= 3.0, "ratio {ratio} too large: {line}");
                assert!(ratio >= 0.8, "ratio {ratio} below bound: {line}");
            }
        }
    }
}
