//! **`repro dag`** — the round-structure search end to end: for a
//! cluster spec, search each workload's multi-round DAG shapes
//! (`mr-plan::dag`), execute the winner with each round's predicted `q`
//! as that round's hard budget, and print the chosen DAG with per-round
//! predicted vs measured `(q, r)` and the total cost.
//!
//! Arguments: workload names (`matmul`, `hamming-d1`, `join-agg`) filter
//! the searched workloads, a scale token (`small`/`default`/`full`)
//! picks the instance preset, and `--q-budget N` bounds every round's
//! reducer load — the knob that demonstrates the §6.3 crossover being
//! *found* by the search rather than special-cased. `--trace` records
//! the run with [`mr_obs`] and appends a span summary after the
//! semantic JSON (which stays byte-identical either way).

use crate::json;
use crate::table::{fmt, Table};
use mr_core::family::Scale;
use mr_plan::{CacheStats, ClusterSpec, DagPlanReport, DagWorkload, PlanCache, PlanError};
use mr_sim::EngineError;

use super::plan::Q_BUDGET_FLAG;

/// Parses the experiment's tokens into a selection. Scale and budget
/// tokens work exactly as in `repro plan`; workload tokens name the
/// searchable workloads (a superset view: `join-agg` is the join
/// pipeline workload over the `join-cycle3` registry instance).
fn parse(args: &[String]) -> Result<(Vec<DagWorkload>, Scale, ClusterSpec, bool), String> {
    let mut picked: Vec<DagWorkload> = Vec::new();
    let mut scale: Option<Scale> = None;
    let mut cluster = ClusterSpec::default();
    let mut trace = false;
    let mut it = args.iter();
    while let Some(tok) = it.next() {
        if tok == super::trace::TRACE_FLAG {
            trace = true;
        } else if tok == Q_BUDGET_FLAG {
            let value = it
                .next()
                .ok_or_else(|| format!("{Q_BUDGET_FLAG} requires a value"))?;
            let q: u64 = value
                .parse()
                .map_err(|_| format!("{Q_BUDGET_FLAG} value '{value}' is not a number"))?;
            if q == 0 {
                return Err(format!("{Q_BUDGET_FLAG} must be positive"));
            }
            cluster.reducer_capacity = Some(q);
        } else if let Some(sc) = crate::selectors::scale_token(tok) {
            crate::selectors::set_scale(&mut scale, sc)?;
        } else if let Some(w) = DagWorkload::ALL.iter().find(|w| w.name() == tok.as_str()) {
            if picked.contains(w) {
                return Err(format!("workload '{tok}' selected twice"));
            }
            picked.push(*w);
        } else {
            return Err(format!(
                "unknown dag selector '{tok}'; workloads: {}; scales: small, default, full; \
                 budget: {Q_BUDGET_FLAG} N",
                DagWorkload::ALL
                    .iter()
                    .map(|w| w.name())
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
        }
    }
    if picked.is_empty() {
        picked = DagWorkload::ALL.to_vec();
    }
    Ok((picked, scale.unwrap_or_default(), cluster, trace))
}

/// One workload's outcome: a measured report, an honest refusal, or an
/// execution abort (a round that overflowed its own prediction — a
/// planner bug, reported rather than panicked).
enum Outcome {
    Planned(Box<DagPlanReport>),
    Refused(&'static str, PlanError),
    Aborted(&'static str, EngineError),
}

fn run(args: &[String]) -> Result<String, String> {
    let (picked, scale, cluster, trace) = parse(args)?;
    // As in `repro plan`: a resident PlanCache fronts the round-structure
    // search. The first pass populates (all misses, used for execution);
    // the second pass proves a repeated request skips the search.
    let compute = || {
        let cache = PlanCache::new();
        let outcomes: Vec<Outcome> = picked
            .iter()
            .map(|w| match cache.plan_dag(*w, &cluster, scale) {
                Ok(plan) => match plan.execute() {
                    Ok(report) => Outcome::Planned(Box::new(report)),
                    Err(e) => Outcome::Aborted(w.name(), e),
                },
                Err(e) => Outcome::Refused(w.name(), e),
            })
            .collect();
        for w in &picked {
            let _ = cache.plan_dag(*w, &cluster, scale);
        }
        (outcomes, cache.stats())
    };
    let ((outcomes, cache_stats), trace_report) = if trace {
        let (result, tr) = mr_obs::record(compute);
        (result, Some(tr))
    } else {
        (compute(), None)
    };

    let mut out = format!(
        "Round-structure search (mr-plan::dag): the cheapest DAG of rounds per workload.\n\
         Cluster: {}.\n\
         Cost = Σ rounds (a·r + b·q + c·q²) + ℓ·depth; every candidate DAG is priced\n\
         per round (closed forms for matmul, a measured reference execution for the\n\
         rest), and the winner runs with each round's predicted q as that round's\n\
         hard budget — an undershot prediction aborts the round.\n\n",
        cluster.describe()
    );

    let mut t = Table::new(&[
        "workload",
        "chosen DAG",
        "rounds",
        "depth",
        "cost(pred)",
        "cost(meas)",
        "outputs",
        "wall(ms)",
    ]);
    for o in &outcomes {
        if let Outcome::Planned(rep) = o {
            t.row(vec![
                rep.plan.workload.name().to_string(),
                rep.plan.schema.clone(),
                rep.plan.dag.rounds.len().to_string(),
                rep.plan.dag.depth().to_string(),
                fmt(rep.plan.predicted_cost),
                fmt(rep.measured_cost),
                rep.outputs.to_string(),
                format!("{:.3}", rep.wall.as_secs_f64() * 1e3),
            ]);
        }
    }
    out.push_str(&t.render());

    out.push_str("\nPer-round predicted vs measured (q, r):\n");
    for o in &outcomes {
        if let Outcome::Planned(rep) = o {
            let mut rt = Table::new(&[
                "workload", "round", "q(pred)", "q(meas)", "r(pred)", "r(meas)", "skew",
            ]);
            for obs in &rep.rounds {
                rt.row(vec![
                    rep.plan.workload.name().to_string(),
                    obs.name.clone(),
                    obs.predicted_q.to_string(),
                    obs.measured_q.to_string(),
                    fmt(obs.predicted_r),
                    fmt(obs.measured_r),
                    format!("{:.2}", obs.partition_skew),
                ]);
            }
            out.push_str(&rt.render());
            out.push('\n');
        }
    }

    out.push_str("Rationale:\n");
    for o in &outcomes {
        match o {
            Outcome::Planned(rep) => out.push_str(&format!(
                "  {}: {}\n",
                rep.plan.workload.name(),
                rep.plan.rationale
            )),
            Outcome::Refused(w, e) => out.push_str(&format!("  {w}: REFUSED — {e}\n")),
            Outcome::Aborted(w, e) => out.push_str(&format!("  {w}: ABORTED — {e}\n")),
        }
    }

    out.push_str(&format!(
        "\nPlan cache: {} hits, {} misses over two planning passes (a repeated\n\
         request is answered from the resident cache without re-running the\n\
         round-structure search; refusals are never cached).\n",
        cache_stats.hits, cache_stats.misses
    ));

    out.push_str(
        "\nJSON (semantic — deterministic across runs; wall-clock is execution metadata,\n\
         see the table):\n\n",
    );
    out.push_str(&semantic_json(&cluster, &outcomes, cache_stats));
    if let Some(tr) = &trace_report {
        out.push_str(&super::trace::trace_section(tr));
    }
    Ok(out)
}

/// The deterministic JSON serialisation of a dag run (no wall-clock).
fn semantic_json(cluster: &ClusterSpec, outcomes: &[Outcome], cache: CacheStats) -> String {
    let mut out = String::from("{\n  \"subsystem\": \"dag-planner\",\n");
    out.push_str(&format!(
        "  \"cluster\": \"{}\",\n  \"plans\": [\n",
        json::escape(&cluster.describe())
    ));
    for (i, o) in outcomes.iter().enumerate() {
        let mut obj = json::Obj::new();
        match o {
            Outcome::Planned(rep) => {
                let rounds = rep
                    .rounds
                    .iter()
                    .map(|r| {
                        let mut ro = json::Obj::new();
                        ro.str("name", &r.name)
                            .int("q_pred", r.predicted_q)
                            .int("q_meas", r.measured_q)
                            .num("r_pred", r.predicted_r)
                            .num("r_meas", r.measured_r);
                        ro.compact()
                    })
                    .collect::<Vec<_>>()
                    .join(", ");
                obj.str("workload", rep.plan.workload.name())
                    .str("schema", &rep.plan.schema)
                    .int("rounds", rep.plan.dag.rounds.len() as u64)
                    .int("depth", rep.plan.dag.depth() as u64)
                    .num("cost_pred", rep.plan.predicted_cost)
                    .num("cost_meas", rep.measured_cost)
                    .int("outputs", rep.outputs)
                    .raw("per_round", format!("[{rounds}]"))
                    .str("rationale", &rep.plan.rationale);
            }
            Outcome::Refused(w, e) => {
                obj.str("workload", w).str("error", &e.to_string());
            }
            Outcome::Aborted(w, e) => {
                obj.str("workload", w).str("error", &e.to_string());
            }
        }
        out.push_str("    ");
        out.push_str(&obj.compact());
        if i + 1 < outcomes.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"plan_cache\": {{\"hits\": {}, \"misses\": {}}}\n}}\n",
        cache.hits, cache.misses
    ));
    out
}

/// The `repro dag` runner: selector errors become the report text (the
/// repro driver validates most tokens up front, so this is a backstop).
pub fn report_args(args: &[String]) -> String {
    run(args).unwrap_or_else(|e| format!("dag selection error: {e}"))
}

/// True when `token` selects a dag workload that is *not* also a shared
/// family selector (today only `join-agg`) — the repro driver uses this
/// to accept such tokens on the command line.
pub fn is_dag_workload(token: &str) -> bool {
    DagWorkload::ALL.iter().any(|w| w.name() == token)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(tokens: &[&str]) -> Vec<String> {
        tokens.iter().map(|t| t.to_string()).collect()
    }

    #[test]
    fn default_report_covers_every_workload() {
        let out = report_args(&args(&["small"]));
        for w in DagWorkload::ALL {
            assert!(out.contains(w.name()), "{} missing:\n{out}", w.name());
        }
        assert!(out.contains("Rationale:"));
        assert!(out.contains("\"subsystem\": \"dag-planner\""));
        assert!(!out.contains("REFUSED"));
        assert!(!out.contains("ABORTED"));
    }

    #[test]
    fn q_budget_flips_matmul_to_a_multi_round_tree() {
        // Small scale: n = 4, n² = 16.
        let out = report_args(&args(&["small", "matmul", "--q-budget", "8"]));
        assert!(out.contains("two-phase(n=4"), "{out}");
        assert!(out.contains("q-budget=8"));
        let out2 = report_args(&args(&["small", "matmul", "--q-budget", "16"]));
        assert!(out2.contains("one-phase(n=4"), "{out2}");
    }

    #[test]
    fn per_round_observations_are_printed_for_every_round() {
        let out = report_args(&args(&["small", "join-agg"]));
        // The pushed pipeline has a join round and an aggregate round at
        // minimum; both must appear in the per-round table.
        assert!(out.contains("q(pred)"), "{out}");
        assert!(out.contains("\"per_round\""), "{out}");
    }

    #[test]
    fn impossible_budget_is_refused_not_planned() {
        let out = report_args(&args(&["small", "matmul", "--q-budget", "1"]));
        assert!(out.contains("REFUSED"), "{out}");
    }

    #[test]
    fn bad_tokens_are_reported_with_the_vocabulary() {
        let out = report_args(&args(&["bogus"]));
        assert!(out.contains("dag selection error"));
        assert!(out.contains("join-agg"));
        let out2 = report_args(&args(&["--q-budget"]));
        assert!(out2.contains("requires a value"));
        let out3 = report_args(&args(&["small", "full"]));
        assert!(out3.contains("at most one scale"));
    }

    #[test]
    fn plan_cache_counters_land_in_the_semantic_json() {
        // Two planning passes over the full workload set: all three plan
        // cleanly on the default cluster, so first pass misses, second hits.
        let n = DagWorkload::ALL.len() as u64;
        let out = report_args(&args(&["small"]));
        let expected = format!("\"plan_cache\": {{\"hits\": {n}, \"misses\": {n}}}");
        assert!(out.contains(&expected), "{out}");
    }

    #[test]
    fn semantic_json_is_byte_identical_across_runs() {
        let json = |_: ()| {
            let out = report_args(&args(&["small"]));
            out.split("JSON").nth(1).unwrap().to_string()
        };
        assert_eq!(json(()), json(()));
    }

    #[test]
    fn trace_flag_appends_a_trace_section_without_touching_the_json() {
        let with = report_args(&args(&["small", "join-agg", "--trace"]));
        let without = report_args(&args(&["small", "join-agg"]));
        let json_of = |s: &str| {
            s.split("JSON")
                .nth(1)
                .unwrap()
                .split("\nTrace (")
                .next()
                .unwrap()
                .to_string()
        };
        assert_eq!(json_of(&with), json_of(&without));
        assert!(with.contains("span tree: well-formed"), "{with}");
        assert!(with.contains("dag.execute"), "{with}");
        // The per-round table carries the observed partition skew.
        assert!(with.contains("skew"), "{with}");
    }
}
