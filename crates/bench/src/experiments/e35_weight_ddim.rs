//! **§3.5** — the `d`-dimensional weight partition: replication `1 + d/k`
//! with `log₂q ≈ b − (d/2)·log₂b`.

use crate::table::{fmt, Table};
use mr_core::model::validate_schema;
use mr_core::problems::hamming::{HammingProblem, WeightSchemaD};

/// Renders the §3.5 sweep over `d` and `k`.
pub fn report() -> String {
    let mut t = Table::new(&[
        "b",
        "d",
        "k",
        "log2 q (exact)",
        "b - (d/2)log2 b",
        "r measured",
        "1 + d/k",
        "valid",
    ]);
    for (b, d, k) in [
        (12u32, 2u32, 2u32),
        (12, 2, 3),
        (12, 3, 2),
        (12, 4, 3),
        (16, 2, 2),
        (16, 4, 2),
    ] {
        let problem = HammingProblem::distance_one(b);
        let schema = WeightSchemaD::new(b, d, k);
        let report = validate_schema(&problem, &schema);
        t.row(vec![
            b.to_string(),
            d.to_string(),
            k.to_string(),
            fmt((report.max_load as f64).log2()),
            fmt(b as f64 - d as f64 / 2.0 * (b as f64).log2()),
            fmt(report.replication_rate),
            fmt(schema.approx_replication()),
            report.is_valid().to_string(),
        ]);
    }
    format!(
        "§3.5: d-dimensional weight partition (generalising Figure 2)\n\
         Higher d trades smaller reducers for replication approaching 1 + d/k.\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn all_rows_valid() {
        assert!(!super::report().contains("false"));
    }
}
