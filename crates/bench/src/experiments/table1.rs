//! **Table 1** — lower bounds on replication rate for every problem.
//!
//! Reproduces the paper's summary table: `|I|`, `|O|`, `g(q)`, and the
//! lower bound `r ≥ q|O|/(g(q)|I|)`, evaluated symbolically and at a
//! sample `q`. An extra column validates each claimed `g(q)` against the
//! exhaustive empirical prober on a small instance.

use crate::table::{fmt, Table};
use mr_core::problems::hamming::{lemma31_g, HammingProblem};
use mr_core::problems::join::{multiway_lower_bound, Query};
use mr_core::problems::matmul::MatMulProblem;
use mr_core::problems::sample_graph::SampleGraphProblem;
use mr_core::problems::triangle::{g_triangles, TriangleProblem};
use mr_core::problems::two_path::TwoPathProblem;
use mr_core::recipe::max_outputs_covered;
use mr_core::Problem;
use mr_graph::patterns;

/// Rows of Table 1 evaluated at a representative `q`, plus an empirical
/// check of `g(q)` on a small instance.
pub fn report() -> String {
    let mut t = Table::new(&[
        "problem",
        "|I|",
        "|O|",
        "g(q)",
        "lower bound r",
        "r at sample q",
        "g check (small inst.)",
    ]);

    // Hamming distance 1, b = 12, sample q = 2^4.
    {
        let b = 12u32;
        let p = HammingProblem::distance_one(b);
        let q = 16.0;
        let small = HammingProblem::distance_one(4);
        let probe = (1..=16usize)
            .all(|qq| max_outputs_covered(&small, qq) as f64 <= lemma31_g(qq as f64) + 1e-9);
        t.row(vec![
            format!("Hamming-1 (b={b})"),
            p.num_inputs().to_string(),
            p.num_outputs().to_string(),
            "(q/2)log2 q".into(),
            "b/log2 q".into(),
            fmt(p.recipe().replication_lower_bound(q)),
            if probe {
                "holds (b=4, all q)"
            } else {
                "VIOLATED"
            }
            .into(),
        ]);
    }

    // Triangles, n = 30, sample q = 50.
    {
        let n = 30u32;
        let p = TriangleProblem::new(n);
        let q = 50.0;
        let small = TriangleProblem::new(5);
        let probe = (3..=10usize).all(|qq| {
            // discretisation-tolerant ceiling, cf. §4.1
            let k = (2.0 * qq as f64).sqrt().ceil();
            max_outputs_covered(&small, qq) as f64 <= k * (k - 1.0) * (k - 2.0) / 6.0 + 1.0
        });
        let _ = g_triangles(q);
        t.row(vec![
            format!("Triangles (n={n})"),
            p.num_inputs().to_string(),
            p.num_outputs().to_string(),
            "sqrt(2)/3 q^1.5".into(),
            "n/sqrt(2q)".into(),
            fmt(p.recipe().replication_lower_bound(q)),
            if probe {
                "holds (n=5, q<=10)"
            } else {
                "VIOLATED"
            }
            .into(),
        ]);
    }

    // Alon-class sample graph: C4, n = 12, sample q = 16.
    {
        let n = 12u32;
        let p = SampleGraphProblem::new(patterns::cycle(4), n);
        let q = 16.0;
        let small = SampleGraphProblem::new(patterns::cycle(4), 5);
        let probe = (4..=10usize)
            .all(|qq| max_outputs_covered(&small, qq) as f64 <= (qq as f64).powf(2.0) + 1e-9);
        t.row(vec![
            format!("C4 instances (n={n})"),
            p.num_inputs().to_string(),
            p.num_outputs().to_string(),
            "q^(s/2) = q^2".into(),
            "(n/sqrt(q))^(s-2)".into(),
            fmt(p.recipe().replication_lower_bound(q)),
            if probe {
                "holds (n=5, q<=10)"
            } else {
                "VIOLATED"
            }
            .into(),
        ]);
    }

    // 2-paths, n = 30, sample q = 10.
    {
        let n = 30u32;
        let p = TwoPathProblem::new(n);
        let q = 10.0;
        let small = TwoPathProblem::new(6);
        // A star with q edges achieves C(q,2) exactly — possible only up
        // to q = n−1 = 5 (max degree).
        let probe =
            (2..=5usize).all(|qq| max_outputs_covered(&small, qq) == (qq * (qq - 1) / 2) as u64);
        t.row(vec![
            format!("2-paths (n={n})"),
            p.num_inputs().to_string(),
            p.num_outputs().to_string(),
            "C(q,2)".into(),
            "2n/q".into(),
            fmt(p.recipe().clamped_lower_bound(q)),
            if probe {
                "exact (n=6, q<=6)"
            } else {
                "VIOLATED"
            }
            .into(),
        ]);
    }

    // Multiway join: chain N=3 over domain n=10, sample q = 25.
    {
        let query = Query::chain(3);
        let rho = query.rho();
        let n = 10.0;
        let q = 25.0;
        t.row(vec![
            "Chain join N=3 (n=10)".into(),
            format!("{}", 3 * 100),
            format!("{}", 10_000),
            format!("q^rho (rho={rho:.1})"),
            "n^(m-2)/q^(rho-1)".into(),
            fmt(multiway_lower_bound(n, 4, rho, q)),
            "rho via LP".into(),
        ]);
    }

    // Matrix multiplication, n = 16, sample q = 128.
    {
        let n = 16u32;
        let p = MatMulProblem::new(n);
        let q = 128.0;
        let small = MatMulProblem::new(2);
        let probe = [4usize, 8]
            .iter()
            .all(|&qq| max_outputs_covered(&small, qq) as f64 <= (qq * qq) as f64 / 16.0 + 1e-9);
        t.row(vec![
            format!("MatMul (n={n})"),
            p.num_inputs().to_string(),
            p.num_outputs().to_string(),
            "q^2/(4n^2)".into(),
            "2n^2/q".into(),
            fmt(p.recipe().replication_lower_bound(q)),
            if probe { "holds (n=2)" } else { "VIOLATED" }.into(),
        ]);
    }

    format!(
        "Table 1: lower bounds on replication rate (paper §2.5)\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn report_mentions_every_problem_and_no_violations() {
        let r = super::report();
        for needle in [
            "Hamming-1",
            "Triangles",
            "C4 instances",
            "2-paths",
            "Chain join",
            "MatMul",
        ] {
            assert!(r.contains(needle), "missing {needle} in:\n{r}");
        }
        assert!(!r.contains("VIOLATED"), "empirical g check failed:\n{r}");
    }
}
