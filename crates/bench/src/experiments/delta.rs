//! **`repro delta`** — incremental execution end to end: hold each
//! registry family resident, apply a deterministic churn (remove every
//! 7th base input, add a held-out tail), and print the delta path's
//! dirty-reducer count and delta-shuffle volume next to the full-run
//! equivalents, with the byte-identity and census-exactness verdicts.
//!
//! Arguments: family names filter the registry, a scale token
//! (`small`/`default`/`full`) picks the instance preset, and `--trace`
//! records the run with [`mr_obs`], appending a span summary after the
//! semantic JSON (which stays byte-identical either way). The churn is a
//! pure function of the instance size ([`DeltaSpec::tail_churn`]), so
//! everything but wall-clock is deterministic across runs.

use crate::json;
use crate::table::{fmt, Table};
use mr_core::family::{family_by_name, DeltaReport, DeltaSpec, Scale};
use mr_sim::Pipeline;

/// Parses the experiment's tokens through the shared
/// [`crate::selectors`] helpers (the same ones frontier and plan use).
fn parse(args: &[String]) -> Result<(Vec<&'static str>, Scale, bool), String> {
    let names = crate::sweep::available_families();
    let mut picked: Vec<&'static str> = Vec::new();
    let mut scale: Option<Scale> = None;
    let mut trace = false;
    for tok in args {
        if tok == super::trace::TRACE_FLAG {
            trace = true;
        } else if let Some(sc) = crate::selectors::scale_token(tok) {
            crate::selectors::set_scale(&mut scale, sc)?;
        } else if !crate::selectors::pick_family(&names, tok, &mut picked) {
            return Err(format!(
                "unknown delta selector '{tok}'; families: {}; scales: small, default, full",
                names.join(", ")
            ));
        }
    }
    if picked.is_empty() {
        picked = names;
    }
    Ok((picked, scale.unwrap_or_default(), trace))
}

/// One family's measured delta run, plus the labels the report prints.
struct Row {
    family: &'static str,
    schema: String,
    report: DeltaReport,
}

/// Runs the churn on the named family's most-partitioned grid point —
/// the point where incremental execution has the most reducers to save.
fn churn_family(family: &'static str, scale: Scale) -> Row {
    let fam = family_by_name(family, scale).expect("selector vocabulary matches the registry");
    let point = (0..fam.grid().len())
        .max_by_key(|&p| fam.census(p).reducers)
        .expect("grids are non-empty");
    let schema = fam.grid()[point].schema.clone();
    let spec = DeltaSpec::tail_churn(fam.num_inputs());
    let report = fam.delta_run(
        point,
        &mr_sim::EngineConfig::parallel(4),
        Pipeline::Columnar,
        &spec,
    );
    Row {
        family,
        schema,
        report,
    }
}

fn run(args: &[String]) -> Result<String, String> {
    let (picked, scale, trace) = parse(args)?;
    let compute = || -> Vec<Row> { picked.iter().map(|f| churn_family(f, scale)).collect() };
    let (rows, trace_report) = if trace {
        let (rows, tr) = mr_obs::record(compute);
        (rows, Some(tr))
    } else {
        (compute(), None)
    };

    let mut out = String::from(
        "Incremental (delta) execution: each family held resident, then churned —\n\
         every 7th base input removed, a held-out tail added. Only the reducers the\n\
         changed inputs map to re-execute (§2.2 obliviousness); `match` asserts the\n\
         retained result equals a fresh full run byte-identically, `census` that the\n\
         map-side prediction of dirty reducers / delta pairs / post-q was exact.\n\
         The delta runs under the predicted post-q as a hard reducer budget.\n\n",
    );

    let mut t = Table::new(&[
        "family",
        "schema",
        "base",
        "+add/-rm",
        "dirty/full reducers",
        "Δpairs/full",
        "retract/add out",
        "match",
        "census",
        "wall Δ/full (ms)",
    ]);
    for r in &rows {
        let rep = &r.report;
        t.row(vec![
            r.family.to_string(),
            r.schema.clone(),
            rep.base_inputs.to_string(),
            format!("+{}/-{}", rep.added, rep.removed),
            format!("{}/{}", rep.dirty_reducers, rep.full_reducers),
            format!("{}/{}", rep.delta_pairs, rep.full_pairs),
            format!("{}/{}", rep.outputs_retracted, rep.outputs_added),
            if rep.matches_full_run { "yes" } else { "NO" }.to_string(),
            if rep.prediction_exact { "exact" } else { "OFF" }.to_string(),
            format!(
                "{}/{}",
                fmt(rep.wall_delta.as_secs_f64() * 1e3),
                fmt(rep.wall_full.as_secs_f64() * 1e3)
            ),
        ]);
    }
    out.push_str(&t.render());

    out.push_str(
        "\nJSON (semantic — deterministic across runs; wall-clock is execution metadata,\n\
         see the table):\n\n",
    );
    out.push_str(&semantic_json(scale, &rows));
    if let Some(tr) = &trace_report {
        out.push_str(&super::trace::trace_section(tr));
    }
    Ok(out)
}

/// The deterministic JSON serialisation of a delta run (no wall-clock).
fn semantic_json(scale: Scale, rows: &[Row]) -> String {
    let mut out = String::from("{\n  \"subsystem\": \"delta\",\n");
    out.push_str(&format!(
        "  \"scale\": \"{}\",\n  \"runs\": [\n",
        format!("{scale:?}").to_lowercase()
    ));
    for (i, r) in rows.iter().enumerate() {
        let rep = &r.report;
        let mut obj = json::Obj::new();
        obj.str("family", r.family)
            .str("schema", &r.schema)
            .int("base_inputs", rep.base_inputs)
            .int("added", rep.added)
            .int("removed", rep.removed)
            .int("dirty_reducers", rep.dirty_reducers)
            .int("full_reducers", rep.full_reducers)
            .int("delta_pairs", rep.delta_pairs)
            .int("full_pairs", rep.full_pairs)
            .int("outputs_retracted", rep.outputs_retracted)
            .int("outputs_added", rep.outputs_added)
            .int("outputs_total", rep.outputs_total)
            .int("post_q", rep.census.post_q)
            .raw("matches_full_run", rep.matches_full_run.to_string())
            .raw("prediction_exact", rep.prediction_exact.to_string());
        out.push_str("    ");
        out.push_str(&obj.compact());
        if i + 1 < rows.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

/// The `repro delta` runner: selector errors become the report text (the
/// repro driver validates most tokens up front, so this is a backstop).
pub fn report_args(args: &[String]) -> String {
    run(args).unwrap_or_else(|e| format!("delta selection error: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(tokens: &[&str]) -> Vec<String> {
        tokens.iter().map(|t| t.to_string()).collect()
    }

    #[test]
    fn default_report_churns_every_family() {
        let out = report_args(&args(&["small"]));
        for family in crate::sweep::available_families() {
            assert!(out.contains(family), "{family} missing:\n{out}");
        }
        assert!(out.contains("\"subsystem\": \"delta\""));
        assert!(!out.contains(" NO "), "a family diverged:\n{out}");
        assert!(!out.contains(" OFF "), "a census mispredicted:\n{out}");
    }

    #[test]
    fn family_and_scale_selectors_filter_the_run() {
        let out = report_args(&args(&["small", "triangles"]));
        assert!(out.contains("triangles"));
        assert!(!out.contains("matmul"));
        assert!(out.contains("\"scale\": \"small\""));
    }

    #[test]
    fn bad_tokens_are_reported_with_the_vocabulary() {
        let out = report_args(&args(&["bogus"]));
        assert!(out.contains("delta selection error"));
        assert!(out.contains("hamming-d1"));
        let out2 = report_args(&args(&["small", "full"]));
        assert!(out2.contains("at most one scale"));
    }

    #[test]
    fn semantic_json_is_byte_identical_across_runs() {
        let json = |_: ()| {
            let out = report_args(&args(&["small", "two-path"]));
            out.split("JSON").nth(1).unwrap().to_string()
        };
        assert_eq!(json(()), json(()));
    }

    #[test]
    fn trace_flag_appends_a_trace_section_without_touching_the_json() {
        let with = report_args(&args(&["small", "two-path", "--trace"]));
        let without = report_args(&args(&["small", "two-path"]));
        let json_of = |s: &str| {
            s.split("JSON")
                .nth(1)
                .unwrap()
                .split("\nTrace (")
                .next()
                .unwrap()
                .to_string()
        };
        assert_eq!(json_of(&with), json_of(&without));
        assert!(with.contains("span tree: well-formed"), "{with}");
        assert!(with.contains("delta.apply"), "{with}");
        assert!(with.contains("delta.routing"), "{with}");
    }
}
