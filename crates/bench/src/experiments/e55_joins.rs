//! **§5.5** — multiway joins: `ρ` from the fractional-edge-cover LP,
//! chain joins under Shares vs the `(n/√q)^{N−1}` bound, and star joins
//! vs the §5.5.2 replication formula.

use crate::table::{fmt, Table};
use mr_core::problems::join::{
    chain_lower_bound, optimize_shares, star_replication, Database, Query, SharesSchema,
};
use mr_sim::EngineConfig;

/// Measured chain-join point: `(p, shares, q, r, bound at q)`.
pub fn chain_point(
    n_rels: usize,
    domain: u32,
    per_rel: usize,
    p: u64,
) -> (Vec<u64>, u64, f64, f64) {
    let query = Query::chain(n_rels);
    let db = Database::random(&query, domain, per_rel, 13);
    let shares = optimize_shares(&query, &vec![per_rel as u64; n_rels], p);
    let schema = SharesSchema::new(query, shares.clone());
    let (_, m) = schema.run(&db, &EngineConfig::parallel(4)).unwrap();
    let q = m.load.max;
    // Effective domain for the bound: tuples are random over `domain`, so
    // the per-reducer bound uses the *instance* scale (per_rel tuples per
    // relation play the role of n² potential tuples — we use the edge
    // form: (sqrt(R/q))^(N-1) with R = per_rel, analogous to §5.3).
    let bound = (per_rel as f64 / q as f64).sqrt().powi(n_rels as i32 - 1);
    (shares, q, m.replication_rate(), bound)
}

/// Renders the §5.5 experiments.
pub fn report() -> String {
    // ρ values from the LP (§5.5.1).
    let mut rho_t = Table::new(&["query", "m vars", "atoms", "rho (LP)", "rho (theory)"]);
    for (name, q, theory) in [
        ("chain N=3", Query::chain(3), 2.0),
        ("chain N=5", Query::chain(5), 3.0),
        ("cycle C3", Query::cycle(3), 1.5),
        ("cycle C5", Query::cycle(5), 2.5),
        ("star N=3", Query::star(3), 3.0),
    ] {
        rho_t.row(vec![
            name.into(),
            q.num_vars.to_string(),
            q.atoms.len().to_string(),
            fmt(q.rho()),
            fmt(theory),
        ]);
    }

    // Chain joins, N = 3, growing parallelism.
    let mut chain_t = Table::new(&["N", "p", "shares", "q", "r measured", "edge-form bound"]);
    for p in [4u64, 16, 64] {
        let (shares, q, r, bound) = chain_point(3, 24, 300, p);
        chain_t.row(vec![
            "3".into(),
            p.to_string(),
            format!("{shares:?}"),
            q.to_string(),
            fmt(r),
            fmt(bound),
        ]);
    }

    // Star join vs the closed-form replication (§5.5.2).
    let mut star_t = Table::new(&["N dims", "p", "r measured", "r formula", "rel err"]);
    let num_dims = 3;
    let query = Query::star(num_dims);
    let (fact, dim) = (3000usize, 100usize);
    let db = Database::random_with_sizes(&query, 20, &[fact, dim, dim, dim], 21);
    for p in [8u64, 64, 512] {
        let sizes = vec![fact as u64, dim as u64, dim as u64, dim as u64];
        let shares = optimize_shares(&query, &sizes, p);
        let schema = SharesSchema::new(query.clone(), shares);
        let (_, m) = schema.run(&db, &EngineConfig::parallel(4)).unwrap();
        let formula = star_replication(fact as f64, dim as f64, num_dims, p as f64);
        let rel = (m.replication_rate() - formula).abs() / formula;
        star_t.row(vec![
            num_dims.to_string(),
            p.to_string(),
            fmt(m.replication_rate()),
            fmt(formula),
            fmt(rel),
        ]);
    }

    // Chain lower-bound curve for reference.
    let mut bound_t = Table::new(&["N", "q", "(n/sqrt(q))^(N-1), n=100"]);
    for n_rels in [3usize, 5] {
        for q in [100.0, 400.0, 2500.0] {
            bound_t.row(vec![
                n_rels.to_string(),
                fmt(q),
                fmt(chain_lower_bound(100.0, n_rels, q)),
            ]);
        }
    }

    format!(
        "§5.5.1: fractional edge covers (rho) via the simplex LP\n\n{}\n\
         §5.5.2: chain joins under optimised Shares\n\n{}\n\
         §5.5.2: star joins vs the closed-form replication\n\n{}\n\
         Chain lower-bound curve (n = 100):\n\n{}",
        rho_t.render(),
        chain_t.render(),
        star_t.render(),
        bound_t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn star_formula_matches_measurement_closely() {
        let query = Query::star(2);
        let (fact, dim) = (2000usize, 80usize);
        let db = Database::random_with_sizes(&query, 48, &[fact, dim, dim], 3);
        let sizes = vec![fact as u64, dim as u64, dim as u64];
        for p in [16u64, 64] {
            let shares = optimize_shares(&query, &sizes, p);
            let schema = SharesSchema::new(query.clone(), shares);
            let (_, m) = schema.run(&db, &EngineConfig::sequential()).unwrap();
            let formula = star_replication(fact as f64, dim as f64, 2, p as f64);
            let rel = (m.replication_rate() - formula).abs() / formula;
            assert!(
                rel < 0.05,
                "p={p}: measured {} vs {formula}",
                m.replication_rate()
            );
        }
    }

    #[test]
    fn chain_replication_grows_with_p() {
        let (_, _, r4, _) = chain_point(3, 16, 150, 4);
        let (_, _, r64, _) = chain_point(3, 16, 150, 64);
        assert!(r64 > r4, "r(p=64)={r64} vs r(p=4)={r4}");
    }
}
