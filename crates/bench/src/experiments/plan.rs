//! **`repro plan`** — the cost-based planner end to end: for a cluster
//! spec, pick the cheapest algorithm per family (`mr-plan`), execute the
//! pick on the engine, and print predicted vs measured `(q, r, cost)`
//! with the planner's rationale.
//!
//! Arguments: family names filter the plannable families, a scale token
//! (`small`/`default`/`full`) picks the instance preset, and
//! `--q-budget N` sets the cluster's per-reducer memory budget — the
//! knob that flips the §6 matmul planner from one-phase to two-phase as
//! soon as `N < n²`.

use crate::json;
use crate::table::{fmt, Table};
use mr_core::family::Scale;
use mr_plan::{plannable_families, CacheStats, ClusterSpec, PlanCache, PlanError, PlanReport};
use mr_sim::EngineError;

/// The token that introduces the reducer budget.
pub const Q_BUDGET_FLAG: &str = "--q-budget";

/// Parses the experiment's tokens into a selection. Family/scale tokens
/// go through the shared [`crate::selectors`] helpers (the same ones the
/// frontier experiment uses); only the budget flag is plan-specific.
fn parse(args: &[String]) -> Result<(Vec<&'static str>, Scale, ClusterSpec, bool), String> {
    let names = plannable_families();
    let mut picked: Vec<&'static str> = Vec::new();
    let mut scale: Option<Scale> = None;
    let mut cluster = ClusterSpec::default();
    let mut trace = false;
    let mut it = args.iter();
    while let Some(tok) = it.next() {
        if tok == super::trace::TRACE_FLAG {
            trace = true;
        } else if tok == Q_BUDGET_FLAG {
            let value = it
                .next()
                .ok_or_else(|| format!("{Q_BUDGET_FLAG} requires a value"))?;
            let q: u64 = value
                .parse()
                .map_err(|_| format!("{Q_BUDGET_FLAG} value '{value}' is not a number"))?;
            if q == 0 {
                return Err(format!("{Q_BUDGET_FLAG} must be positive"));
            }
            cluster.reducer_capacity = Some(q);
        } else if let Some(sc) = crate::selectors::scale_token(tok) {
            crate::selectors::set_scale(&mut scale, sc)?;
        } else if !crate::selectors::pick_family(&names, tok, &mut picked) {
            return Err(format!(
                "unknown plan selector '{tok}'; families: {}; scales: small, default, full; \
                 budget: {Q_BUDGET_FLAG} N",
                names.join(", ")
            ));
        }
    }
    if picked.is_empty() {
        picked = names;
    }
    Ok((picked, scale.unwrap_or_default(), cluster, trace))
}

/// One family's outcome: a measured report, an honest refusal, or an
/// execution abort (a plan that overflowed its own predicted budget —
/// a planner bug, reported rather than panicked).
enum Outcome {
    Planned(Box<PlanReport>),
    Refused(&'static str, PlanError),
    Aborted(&'static str, EngineError),
}

fn run(args: &[String]) -> Result<String, String> {
    let (picked, scale, cluster, trace) = parse(args)?;
    // All planning goes through a resident PlanCache, the way the future
    // mr-serve daemon would hold one: the first pass over the families
    // populates it (all misses), and a second pass demonstrates that a
    // repeated request skips the census/LP entirely (all hits, except for
    // refused plans, which are deliberately never cached).
    let compute = || {
        let cache = PlanCache::new();
        let outcomes: Vec<Outcome> = picked
            .iter()
            .map(|family| match cache.plan_family(family, &cluster, scale) {
                Ok(plan) => match plan.execute() {
                    Ok(report) => Outcome::Planned(Box::new(report)),
                    Err(e) => Outcome::Aborted(family, e),
                },
                Err(e) => Outcome::Refused(family, e),
            })
            .collect();
        for family in &picked {
            let _ = cache.plan_family(family, &cluster, scale);
        }
        let stats = cache.stats();
        (outcomes, stats)
    };
    // Recording never perturbs semantics (invariant #12), so the traced
    // report's semantic JSON stays byte-identical to the untraced one.
    let ((outcomes, cache_stats), trace_report) = if trace {
        let (result, tr) = mr_obs::record(compute);
        (result, Some(tr))
    } else {
        (compute(), None)
    };

    let mut out = format!(
        "Cost-based planner (mr-plan): the cheapest algorithm per family for a cluster.\n\
         Cluster: {}.\n\
         Predictions are exact (map-side census / closed forms / Shares-exponent LP);\n\
         every plan executes under its own predicted q as a hard reducer budget, so\n\
         pred ≠ meas would abort the round rather than print a happy number.\n\n",
        cluster.describe()
    );

    let mut t = Table::new(&[
        "family",
        "chosen schema",
        "q(pred)",
        "q(meas)",
        "r(pred)",
        "r(meas)",
        "cost(pred)",
        "cost(meas)",
        "outputs",
        "skew",
        "wall(ms)",
    ]);
    for o in &outcomes {
        if let Outcome::Planned(rep) = o {
            t.row(vec![
                rep.plan.family.to_string(),
                rep.plan.schema.clone(),
                rep.plan.predicted_q.to_string(),
                rep.measured_q.to_string(),
                fmt(rep.plan.predicted_r),
                fmt(rep.measured_r),
                fmt(rep.plan.predicted_cost),
                fmt(rep.measured_cost),
                rep.outputs.to_string(),
                format!("{:.2}", rep.partition_skew),
                format!("{:.3}", rep.wall.as_secs_f64() * 1e3),
            ]);
        }
    }
    out.push_str(&t.render());

    out.push_str("\nRationale:\n");
    for o in &outcomes {
        match o {
            Outcome::Planned(rep) => {
                out.push_str(&format!("  {}: {}\n", rep.plan.family, rep.plan.rationale))
            }
            Outcome::Refused(family, e) => out.push_str(&format!("  {family}: REFUSED — {e}\n")),
            Outcome::Aborted(family, e) => out.push_str(&format!("  {family}: ABORTED — {e}\n")),
        }
    }

    out.push_str(&format!(
        "\nPlan cache: {} hits, {} misses over two planning passes (a repeated\n\
         request is answered from the resident cache without re-running the\n\
         census or the LP; refusals are never cached).\n",
        cache_stats.hits, cache_stats.misses
    ));

    out.push_str(
        "\nJSON (semantic — deterministic across runs; wall-clock is execution metadata,\n\
         see the table):\n\n",
    );
    out.push_str(&semantic_json(&cluster, &outcomes, cache_stats));
    if let Some(tr) = &trace_report {
        out.push_str(&super::trace::trace_section(tr));
    }
    Ok(out)
}

/// The deterministic JSON serialisation of a plan run (no wall-clock).
fn semantic_json(cluster: &ClusterSpec, outcomes: &[Outcome], cache: CacheStats) -> String {
    let mut out = String::from("{\n  \"subsystem\": \"planner\",\n");
    out.push_str(&format!(
        "  \"cluster\": \"{}\",\n  \"plans\": [\n",
        json::escape(&cluster.describe())
    ));
    for (i, o) in outcomes.iter().enumerate() {
        let mut obj = json::Obj::new();
        match o {
            Outcome::Planned(rep) => {
                obj.str("family", rep.plan.family)
                    .str("schema", &rep.plan.schema)
                    .int("q_pred", rep.plan.predicted_q)
                    .int("q_meas", rep.measured_q)
                    .num("r_pred", rep.plan.predicted_r)
                    .num("r_meas", rep.measured_r)
                    .num("cost_pred", rep.plan.predicted_cost)
                    .num("cost_meas", rep.measured_cost)
                    .int("outputs", rep.outputs)
                    .str("rationale", &rep.plan.rationale);
            }
            Outcome::Refused(family, e) => {
                obj.str("family", family).str("error", &e.to_string());
            }
            Outcome::Aborted(family, e) => {
                obj.str("family", family).str("error", &e.to_string());
            }
        }
        out.push_str("    ");
        out.push_str(&obj.compact());
        if i + 1 < outcomes.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"plan_cache\": {{\"hits\": {}, \"misses\": {}}}\n}}\n",
        cache.hits, cache.misses
    ));
    out
}

/// The `repro plan` runner: selector errors become the report text (the
/// repro driver validates most tokens up front, so this is a backstop).
pub fn report_args(args: &[String]) -> String {
    run(args).unwrap_or_else(|e| format!("plan selection error: {e}"))
}

/// True when `token` is something `repro plan` can consume *besides* the
/// shared family/scale selectors: today only the budget flag (its numeric
/// value is validated by [`report_args`]).
pub fn is_plan_flag(token: &str) -> bool {
    token == Q_BUDGET_FLAG
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(tokens: &[&str]) -> Vec<String> {
        tokens.iter().map(|t| t.to_string()).collect()
    }

    #[test]
    fn default_report_plans_every_family() {
        let out = report_args(&args(&["small"]));
        for family in plannable_families() {
            assert!(out.contains(family), "{family} missing:\n{out}");
        }
        assert!(out.contains("Rationale:"));
        assert!(out.contains("\"subsystem\": \"planner\""));
        assert!(!out.contains("REFUSED"));
    }

    #[test]
    fn q_budget_flips_matmul_to_two_phase() {
        // Small scale: n = 4, n² = 16.
        let out = report_args(&args(&["small", "matmul", "--q-budget", "8"]));
        assert!(out.contains("two-phase(n=4"), "{out}");
        assert!(out.contains("q-budget=8"));
        let out2 = report_args(&args(&["small", "matmul", "--q-budget", "16"]));
        assert!(out2.contains("one-phase(n=4"), "{out2}");
    }

    #[test]
    fn impossible_budget_is_refused_not_planned() {
        let out = report_args(&args(&["small", "triangles", "--q-budget", "1"]));
        assert!(out.contains("REFUSED"), "{out}");
        assert!(out.contains("no schema fits"));
    }

    #[test]
    fn bad_tokens_are_reported_with_the_vocabulary() {
        let out = report_args(&args(&["bogus"]));
        assert!(out.contains("plan selection error"));
        assert!(out.contains("hamming-d1"));
        let out2 = report_args(&args(&["--q-budget"]));
        assert!(out2.contains("requires a value"));
        let out3 = report_args(&args(&["--q-budget", "zero"]));
        assert!(out3.contains("is not a number"));
        let out4 = report_args(&args(&["small", "full"]));
        assert!(out4.contains("at most one scale"));
    }

    #[test]
    fn semantic_json_is_byte_identical_across_runs() {
        let json = |_: ()| {
            let out = report_args(&args(&["small"]));
            out.split("JSON").nth(1).unwrap().to_string()
        };
        // Everything after the JSON marker excludes wall-clock, so two
        // runs must agree byte for byte.
        assert_eq!(json(()), json(()));
    }

    #[test]
    fn plan_cache_counters_land_in_the_semantic_json() {
        // Two planning passes over n families: the first all misses, the
        // second all hits (every family plans cleanly on the default
        // cluster, so nothing is excluded from the cache).
        let n = plannable_families().len() as u64;
        let out = report_args(&args(&["small"]));
        let expected = format!("\"plan_cache\": {{\"hits\": {n}, \"misses\": {n}}}");
        assert!(out.contains(&expected), "{out}");
    }

    #[test]
    fn refused_plans_keep_missing_the_cache() {
        // triangles with q-budget 1 is refused, and refusals are never
        // cached: both passes miss.
        let out = report_args(&args(&["small", "triangles", "--q-budget", "1"]));
        assert!(
            out.contains("\"plan_cache\": {\"hits\": 0, \"misses\": 2}"),
            "{out}"
        );
    }

    #[test]
    fn trace_flag_appends_a_trace_section_without_touching_the_json() {
        let with = report_args(&args(&["small", "two-path", "--trace"]));
        let without = report_args(&args(&["small", "two-path"]));
        let json_of = |s: &str| {
            s.split("JSON")
                .nth(1)
                .unwrap()
                .split("\nTrace (")
                .next()
                .unwrap()
                .to_string()
        };
        // The semantic JSON is byte-identical with tracing on or off.
        assert_eq!(json_of(&with), json_of(&without));
        assert!(with.contains("span tree: well-formed"), "{with}");
        assert!(with.contains("plan.execute"), "{with}");
        assert!(!without.contains("span tree"), "{without}");
    }

    #[test]
    fn partition_skew_lands_in_the_table() {
        let out = report_args(&args(&["small"]));
        assert!(out.contains("skew"), "{out}");
    }

    #[test]
    fn sparse_families_are_not_plannable() {
        let out = report_args(&args(&["triangles-gnm"]));
        assert!(out.contains("plan selection error"), "{out}");
    }
}
