//! **Figure 2 / §3.4** — the weight-partition algorithm for large `q`:
//! measured replication vs the `1 + 2/k` approximation, and measured
//! maximum cell load vs the `k²·2^b/(πb)` estimate.

use crate::table::{fmt, Table};
use mr_core::model::validate_schema;
use mr_core::problems::hamming::{HammingProblem, WeightSchema2D};

/// One measured point: `(b, k, exact max load, approx q, exact r, approx r)`.
pub fn point(b: u32, k: u32) -> (u32, u32, u64, f64, f64, f64) {
    let s = WeightSchema2D::new(b, k);
    (
        b,
        k,
        s.exact_max_load(),
        s.approx_q(),
        s.exact_replication(),
        s.approx_replication(),
    )
}

/// Renders the §3.4 table. Small `b` rows are additionally validated
/// exhaustively against the model.
pub fn report() -> String {
    let mut t = Table::new(&[
        "b",
        "k",
        "log2 q (exact)",
        "b - log2 b",
        "r exact",
        "1 + 2/k",
        "validated",
    ]);
    for (b, k) in [
        (12u32, 2u32),
        (12, 3),
        (16, 2),
        (16, 4),
        (24, 2),
        (24, 3),
        (32, 4),
    ] {
        let (b, k, load, _aq, r_exact, r_approx) = point(b, k);
        // Exhaustive validation is feasible for b <= 16.
        let validated = if b <= 16 {
            let problem = HammingProblem::distance_one(b);
            let schema = WeightSchema2D::new(b, k);
            validate_schema(&problem, &schema).is_valid().to_string()
        } else {
            "(analytic)".into()
        };
        t.row(vec![
            b.to_string(),
            k.to_string(),
            fmt((load as f64).log2()),
            fmt(b as f64 - (b as f64).log2()),
            fmt(r_exact),
            fmt(r_approx),
            validated,
        ]);
    }
    format!(
        "Figure 2 / §3.4: weight-partition algorithm for large q\n\
         log2 q sits near b − log2 b (the far right of Figure 1) while r < 2.\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn replication_under_two_when_buckets_exist() {
        for (b, k) in [(16u32, 2u32), (24, 2), (24, 3), (32, 4)] {
            let (_, _, _, _, r, _) = super::point(b, k);
            assert!(r < 2.0 && r > 1.0, "b={b} k={k}: r={r}");
        }
    }

    #[test]
    fn q_is_near_the_right_edge() {
        // log2 q within O(1) of b − log2 b (§3.4).
        for (b, k) in [(24u32, 2u32), (32, 2)] {
            let (_, _, load, _, _, _) = super::point(b, k);
            let log_q = (load as f64).log2();
            let target = b as f64 - (b as f64).log2();
            assert!(
                (log_q - target).abs() < 4.0,
                "b={b} k={k}: log2 q={log_q} vs {target}"
            );
        }
    }

    #[test]
    fn report_is_fully_validated() {
        assert!(!super::report().contains("false"));
    }
}
