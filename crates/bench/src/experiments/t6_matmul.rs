//! **§6** — matrix multiplication: one-phase vs two-phase total
//! communication across a `q` sweep, with the analytic crossover at
//! `q = n²`, all verified numerically against the serial product.

use crate::table::{fmt, Table};
use mr_core::problems::matmul::problem::run_one_phase;
use mr_core::problems::matmul::{
    one_phase_communication, two_phase_communication, Matrix, OnePhaseSchema, TwoPhaseMatMul,
};
use mr_sim::EngineConfig;

/// Measured comparison at one budget: `(one-phase comm, two-phase comm,
/// both numerically correct)`.
pub fn measure(n: u32, q: u64, a: &Matrix, b: &Matrix) -> (u64, u64, bool) {
    let expected = a.multiply(b);
    let s = {
        let cap = (q / (2 * n as u64)).max(1) as u32;
        (1..=cap.min(n))
            .rev()
            .find(|d| n.is_multiple_of(*d))
            .unwrap_or(1)
    };
    let one = OnePhaseSchema::new(n, s);
    let (p1, m1) = run_one_phase(a, b, &one, &EngineConfig::parallel(4)).unwrap();
    let two = TwoPhaseMatMul::for_budget(n, q);
    let (p2, m2) = two.run(a, b, &EngineConfig::parallel(4)).unwrap();
    let correct = p1.max_abs_diff(&expected) < 1e-9 && p2.max_abs_diff(&expected) < 1e-9;
    (m1.kv_pairs, m2.total_communication(), correct)
}

/// Renders the §6 sweep.
pub fn report() -> String {
    let n = 32u32;
    let a = Matrix::random(n as usize, 61);
    let b = Matrix::random(n as usize, 62);
    let mut t = Table::new(&[
        "q",
        "1-phase (meas.)",
        "2-phase (meas.)",
        "1-phase 4n^4/q",
        "2-phase 4n^3/sqrt(q)",
        "winner",
        "correct",
    ]);
    for q in [128u64, 256, 512, 1024, 2048, 4096] {
        let (c1, c2, ok) = measure(n, q, &a, &b);
        t.row(vec![
            q.to_string(),
            c1.to_string(),
            c2.to_string(),
            fmt(one_phase_communication(n, q as f64)),
            fmt(two_phase_communication(n, q as f64)),
            if c2 < c1 { "two-phase" } else { "one-phase" }.into(),
            ok.to_string(),
        ]);
    }
    format!(
        "§6: one-phase vs two-phase matrix multiplication, n = {n} (n² = {})\n\
         Two-phase wins below q = n²; the analytic curves cross exactly there.\n\n{}",
        n * n,
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_phase_wins_below_n_squared() {
        let n = 16u32;
        let a = Matrix::random(n as usize, 1);
        let b = Matrix::random(n as usize, 2);
        for q in [64u64, 128] {
            let (c1, c2, ok) = measure(n, q, &a, &b);
            assert!(ok, "q={q} incorrect product");
            assert!(c2 < c1, "q={q}: two-phase {c2} !< one-phase {c1}");
        }
    }

    #[test]
    fn analytic_crossover_at_n_squared() {
        let n = 64u32;
        let q = (n * n) as f64;
        let one = one_phase_communication(n, q);
        let two = two_phase_communication(n, q);
        assert!((one - two).abs() / one < 1e-9);
        assert!(one_phase_communication(n, 2.0 * q) < two_phase_communication(n, 2.0 * q));
    }
}
