//! **§1.4 caveat** — skewed data: the model assumes balanced reducer
//! loads, but power-law graphs concentrate edges on hub nodes. This
//! experiment measures reducer-load skew (max/mean) for the triangle
//! algorithm on Erdős–Rényi vs power-law graphs of equal size.

use crate::table::{fmt, Table};
use mr_core::problems::triangle::NodePartitionSchema;
use mr_graph::gen;
use mr_sim::{run_schema, EngineConfig};

/// Renders the skew comparison.
pub fn report() -> String {
    let n = 300usize;
    let er = gen::gnm(n, 3000, 41);
    let avg_deg = 2.0 * er.num_edges() as f64 / n as f64;
    let pl = gen::power_law(n, 2.1, avg_deg, 42);

    let mut t = Table::new(&[
        "graph",
        "edges",
        "k",
        "max load",
        "mean load",
        "skew (max/mean)",
    ]);
    for k in [3u32, 6, 10] {
        let schema = NodePartitionSchema::new(n as u32, k);
        for (name, g) in [("Erdos-Renyi", &er), ("power-law", &pl)] {
            let (_, m) =
                run_schema::<_, [u32; 3], _>(g.edges(), &schema, &EngineConfig::parallel(4))
                    .expect("no budget");
            t.row(vec![
                name.into(),
                g.num_edges().to_string(),
                k.to_string(),
                m.load.max.to_string(),
                fmt(m.load.mean),
                fmt(m.load.skew()),
            ]);
        }
    }
    format!(
        "§1.4 caveat: reducer-load skew under heavy-tailed degree distributions\n\
         (n = {n}; power-law exponent 2.1, matched average degree)\n\n{}\n\
         Hub nodes concentrate edges in the reducers containing their group,\n\
         breaking the uniform-q assumption — the skew-handling literature the\n\
         paper cites ([14], [15]) addresses exactly this gap.\n",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn power_law_is_more_skewed_than_er() {
        use super::*;
        let n = 150usize;
        let er = gen::gnm(n, 1200, 1);
        let pl = gen::power_law(n, 2.1, 16.0, 2);
        let schema = NodePartitionSchema::new(n as u32, 6);
        let (_, mer) =
            run_schema::<_, [u32; 3], _>(er.edges(), &schema, &EngineConfig::sequential()).unwrap();
        let (_, mpl) =
            run_schema::<_, [u32; 3], _>(pl.edges(), &schema, &EngineConfig::sequential()).unwrap();
        assert!(
            mpl.load.skew() > mer.load.skew(),
            "power-law skew {} should exceed ER skew {}",
            mpl.load.skew(),
            mer.load.skew()
        );
    }
}
