//! **Table 2** — upper bounds: every constructive algorithm *run* and
//! measured, compared against its closed-form replication rate.

use crate::table::{fmt, Table};
use mr_core::model::validate_schema;
use mr_core::problems::hamming::{HammingProblem, SplittingSchema};
use mr_core::problems::join::{chain_upper_bound, optimize_shares, Database, Query, SharesSchema};
use mr_core::problems::matmul::problem::run_one_phase;
use mr_core::problems::matmul::{lower_bound_r as matmul_bound, Matrix, OnePhaseSchema};
use mr_core::problems::sample_graph::{MultisetPartitionSchema, SampleGraphProblem};
use mr_core::problems::triangle::{NodePartitionSchema, TriangleProblem};
use mr_core::problems::two_path::{BucketPairSchema, TwoPathProblem};
use mr_graph::patterns;
use mr_sim::EngineConfig;

/// Measured replication of one representative configuration per row of
/// Table 2, with the formula value beside it.
pub fn report() -> String {
    let mut t = Table::new(&[
        "problem / algorithm",
        "q (achieved)",
        "r measured",
        "r formula",
        "valid",
    ]);

    // Hamming-1, Splitting c = 3 at b = 12.
    {
        let b = 12;
        let p = HammingProblem::distance_one(b);
        let s = SplittingSchema::new(b, 3);
        let rep = validate_schema(&p, &s);
        t.row(vec![
            "Hamming-1 / Splitting (b=12, c=3)".into(),
            rep.max_load.to_string(),
            fmt(rep.replication_rate),
            fmt(3.0),
            rep.is_valid().to_string(),
        ]);
    }

    // Triangles, node partition k = 4 at n = 24.
    {
        let n = 24;
        let p = TriangleProblem::new(n);
        let s = NodePartitionSchema::new(n, 4);
        let rep = validate_schema(&p, &s);
        t.row(vec![
            "Triangles / node-partition (n=24, k=4)".into(),
            rep.max_load.to_string(),
            fmt(rep.replication_rate),
            format!("~k = {}", fmt(4.0)),
            rep.is_valid().to_string(),
        ]);
    }

    // C4 sample graph, multiset partition k = 3 at n = 12.
    {
        let n = 12;
        let pattern = patterns::cycle(4);
        let p = SampleGraphProblem::new(pattern.clone(), n);
        let s = MultisetPartitionSchema::new(pattern, n, 3);
        let rep = validate_schema(&p, &s);
        t.row(vec![
            "C4 / multiset-partition (n=12, k=3)".into(),
            rep.max_load.to_string(),
            fmt(rep.replication_rate),
            format!("<=C(k+1,2) = {}", fmt(s.approx_replication())),
            rep.is_valid().to_string(),
        ]);
    }

    // 2-paths, bucket pair k = 4 at n = 24.
    {
        let n = 24;
        let p = TwoPathProblem::new(n);
        let s = BucketPairSchema::new(n, 4);
        let rep = validate_schema(&p, &s);
        t.row(vec![
            "2-paths / bucket-pair (n=24, k=4)".into(),
            rep.max_load.to_string(),
            fmt(rep.replication_rate),
            format!("2(k-1) = {}", fmt(s.nominal_replication())),
            rep.is_valid().to_string(),
        ]);
    }

    // Chain join N = 3 with optimised shares, measured on the simulator.
    {
        let query = Query::chain(3);
        let n_dom = 16u32;
        let per_rel = 120usize;
        let db = Database::random(&query, n_dom, per_rel, 5);
        let shares = optimize_shares(&query, &[per_rel as u64; 3], 16);
        let schema = SharesSchema::new(query, shares);
        let (_, m) = schema.run(&db, &EngineConfig::sequential()).unwrap();
        let q = m.load.max as f64;
        t.row(vec![
            "Chain join N=3 / Shares (p=16)".into(),
            m.load.max.to_string(),
            fmt(m.replication_rate()),
            format!(
                "(n/sqrt(q))^2 = {}",
                fmt(chain_upper_bound(n_dom as f64, 3, q))
            ),
            "true".into(),
        ]);
    }

    // Matrix multiplication, one-phase s = 4 at n = 16.
    {
        let n = 16u32;
        let a = Matrix::random(n as usize, 1);
        let b = Matrix::random(n as usize, 2);
        let s = OnePhaseSchema::new(n, 4);
        let (prod, m) = run_one_phase(&a, &b, &s, &EngineConfig::sequential()).unwrap();
        let correct = prod.max_abs_diff(&a.multiply(&b)) < 1e-9;
        t.row(vec![
            "MatMul / square tiling (n=16, s=4)".into(),
            m.load.max.to_string(),
            fmt(m.replication_rate()),
            format!("2n^2/q = {}", fmt(matmul_bound(n, s.q() as f64))),
            correct.to_string(),
        ]);
    }

    format!(
        "Table 2: upper bounds — constructive algorithms, measured (paper §2.5)\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn all_rows_valid() {
        let r = super::report();
        assert!(!r.contains("false"), "some algorithm failed:\n{r}");
        assert_eq!(r.matches("true").count(), 6, "expected 6 valid rows:\n{r}");
    }
}
