//! One module per paper artifact. See `EXPERIMENTS.md` for the index.

pub mod dag;
pub mod delta;
pub mod e12_cost_model;
pub mod e14_skew;
pub mod e35_weight_ddim;
pub mod e36_distance_d;
pub mod e42_sparse_triangles;
pub mod e52_sample_graphs;
pub mod e54_two_paths;
pub mod e55_joins;
pub mod e71_join_aggregate;
pub mod fig1_hamming;
pub mod fig2_weight;
pub mod plan;
pub mod t6_matmul;
pub mod table1;
pub mod table2;
pub mod trace;

/// How an experiment's report is produced.
pub enum Runner {
    /// A fixed report: most experiments take no parameters.
    Simple(fn() -> String),
    /// A parameterised report: the runner receives the experiment's
    /// extra command-line tokens (today only `frontier`, whose args
    /// select families and a scale preset).
    WithArgs(fn(&[String]) -> String),
}

/// An experiment: stable id, one-line description (shown by
/// `repro list`), and its report runner.
pub struct Experiment {
    /// Stable id, as typed on the `repro` command line.
    pub id: &'static str,
    /// One-line description of what the experiment reproduces.
    pub description: &'static str,
    /// The report producer.
    pub runner: Runner,
}

impl Experiment {
    /// Produces the report; `args` are the experiment's extra tokens
    /// (ignored by [`Runner::Simple`] experiments).
    pub fn run(&self, args: &[String]) -> String {
        match self.runner {
            Runner::Simple(f) => f(),
            Runner::WithArgs(f) => f(args),
        }
    }
}

/// All experiments in presentation order.
pub fn all() -> Vec<Experiment> {
    fn simple(id: &'static str, description: &'static str, f: fn() -> String) -> Experiment {
        Experiment {
            id,
            description,
            runner: Runner::Simple(f),
        }
    }
    vec![
        simple(
            "table1",
            "Table 1 (§2.5): lower bounds on replication rate for every family",
            table1::report,
        ),
        simple(
            "table2",
            "Table 2: upper bounds — every constructive algorithm measured on the engine",
            table2::report,
        ),
        simple(
            "fig1",
            "Figure 1 (§3.2): Hamming-d1 tradeoff — splitting points on the b/log2(q) bound",
            fig1_hamming::report,
        ),
        simple(
            "fig2",
            "Figure 2 / §3.4: weight-partition algorithm at large q",
            fig2_weight::report,
        ),
        simple(
            "e35",
            "§3.5: d-dimensional weight partition, replication 1 + d/k",
            e35_weight_ddim::report,
        ),
        simple(
            "e36",
            "§3.6: larger Hamming distances — generalised splitting and Ball-2",
            e36_distance_d::report,
        ),
        simple(
            "e42",
            "§4.2: triangles on sparse graphs vs the rescaled sqrt(m/q) bound",
            e42_sparse_triangles::report,
        ),
        simple(
            "e52",
            "§5.1–5.3: Alon-class sample graphs vs the edge-form bound",
            e52_sample_graphs::report,
        ),
        simple(
            "e54",
            "§5.4: 2-paths — per-node and bucket-pair algorithms vs 2n/q",
            e54_two_paths::report,
        ),
        simple(
            "e55",
            "§5.5: multiway joins — rho by LP, chain and star joins under Shares",
            e55_joins::report,
        ),
        simple(
            "table6",
            "§6 (Table 6): matmul one-phase vs two-phase communication crossover",
            t6_matmul::report,
        ),
        simple(
            "e71",
            "§7.1 extension: join-then-aggregate plans, naive vs early aggregation",
            e71_join_aggregate::report,
        ),
        simple(
            "e12",
            "§1.2 / Ex. 1.1: measured r = f(q) frontiers minimising cluster cost",
            e12_cost_model::report,
        ),
        simple(
            "e14",
            "§1.4 caveat: reducer-load skew on power-law vs uniform graphs",
            e14_skew::report,
        ),
        Experiment {
            id: "frontier",
            description: "§2.4 vs §§3–6: empirical (q, r) sweep over the family registry; \
                 args select families/scale (e.g. `frontier hamming-d1 matmul`, `frontier small`)",
            runner: Runner::WithArgs(crate::sweep::report_args),
        },
        Experiment {
            id: "plan",
            description: "mr-plan: cost-based planner — cheapest algorithm per family for a \
                 cluster spec, predicted vs measured (q, r, cost); args select \
                 families/scale and `--q-budget N` (e.g. `plan matmul --q-budget 32`)",
            runner: Runner::WithArgs(crate::experiments::plan::report_args),
        },
        Experiment {
            id: "dag",
            description: "mr-plan::dag: round-structure search — cheapest DAG of rounds per \
                 workload, per-round predicted vs measured (q, r) and total cost; args select \
                 workloads/scale and `--q-budget N` (e.g. `dag matmul --q-budget 8`)",
            runner: Runner::WithArgs(crate::experiments::dag::report_args),
        },
        Experiment {
            id: "delta",
            description: "incremental execution: churn each resident family, dirty-reducer \
                 count and delta-shuffle volume vs the full run; args select \
                 families/scale (e.g. `delta triangles small`)",
            runner: Runner::WithArgs(crate::experiments::delta::report_args),
        },
        Experiment {
            id: "trace",
            description: "mr-obs: record one workload end to end — span summary, metrics \
                 snapshot, and Chrome trace_event JSON for Perfetto; args pick a \
                 family or dag workload, a scale, and `--out PATH` \
                 (e.g. `trace hamming-d1 --out trace.json`)",
            runner: Runner::WithArgs(crate::experiments::trace::report_args),
        },
    ]
}
