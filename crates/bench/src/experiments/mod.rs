//! One module per paper artifact. See `EXPERIMENTS.md` for the index.

pub mod e12_cost_model;
pub mod e14_skew;
pub mod e35_weight_ddim;
pub mod e36_distance_d;
pub mod e42_sparse_triangles;
pub mod e52_sample_graphs;
pub mod e54_two_paths;
pub mod e55_joins;
pub mod e71_join_aggregate;
pub mod fig1_hamming;
pub mod fig2_weight;
pub mod t6_matmul;
pub mod table1;
pub mod table2;

/// An experiment id plus its report-producing runner.
pub type Experiment = (&'static str, fn() -> String);

/// All experiment ids in presentation order, with their runner.
pub fn all() -> Vec<Experiment> {
    vec![
        ("table1", table1::report as fn() -> String),
        ("table2", table2::report),
        ("fig1", fig1_hamming::report),
        ("fig2", fig2_weight::report),
        ("e35", e35_weight_ddim::report),
        ("e36", e36_distance_d::report),
        ("e42", e42_sparse_triangles::report),
        ("e52", e52_sample_graphs::report),
        ("e54", e54_two_paths::report),
        ("e55", e55_joins::report),
        ("table6", t6_matmul::report),
        ("e71", e71_join_aggregate::report),
        ("e12", e12_cost_model::report),
        ("e14", e14_skew::report),
        ("frontier", crate::sweep::report),
    ]
}
