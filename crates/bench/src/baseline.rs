//! Re-recordable benchmark baselines with an automatic machine stamp.
//!
//! The workspace root carries three committed baselines —
//! `BENCH_shuffle.json`, `BENCH_frontier.json`, `BENCH_plan.json` — that
//! pin what the engine benchmarks measured on a known machine. They used
//! to be transcribed by hand from `cargo bench` output, which is exactly
//! the kind of step that silently rots: the numbers change, the machine
//! description doesn't, and nobody can tell which container a baseline
//! came from.
//!
//! This module makes re-recording a single command:
//!
//! ```text
//! cargo run --release -p mr-bench --bin record_bench [out_dir]
//! ```
//!
//! Each recorder re-runs its bench workload in process (same shapes as
//! `benches/engine_shuffle.rs`, `engine_frontier.rs`, `engine_plan.rs`:
//! one warm-up plus ten timed samples per configuration) and emits the
//! baseline JSON with a [`MachineStamp`] captured at run time — logical
//! core count from [`std::thread::available_parallelism`] and the UTC
//! date from the system clock — plus the workload parameters, so every
//! baseline records the machine and workload it actually measured.
//!
//! Like the offline criterion shim, the reported mean excludes Tukey
//! outliers (beyond 1.5×IQR): on shared machines one background burst
//! otherwise skews a 10-sample mean far from the typical iteration. Min
//! and max stay raw so the spread remains visible.

use crate::sweep::{sweep_all, SweepConfig};
use mr_core::family::Scale;
use mr_plan::{plan_all, ClusterSpec};
use mr_sim::{run_round, EngineConfig, FnMapper, FnReducer};
use std::hint::black_box;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// What the recording machine looked like when a baseline was taken.
#[derive(Debug, Clone)]
pub struct MachineStamp {
    /// Logical cores visible to the process.
    pub cores: usize,
    /// UTC date of the recording, `YYYY-MM-DD`.
    pub date: String,
}

impl MachineStamp {
    /// Captures the current machine: core count and today's UTC date.
    pub fn detect() -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let secs = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        let (y, m, d) = civil_from_days((secs / 86_400) as i64);
        MachineStamp {
            cores,
            date: format!("{y:04}-{m:02}-{d:02}"),
        }
    }
}

/// Days-since-epoch to a proleptic Gregorian `(year, month, day)` —
/// Howard Hinnant's `civil_from_days` algorithm, so the date stamp needs
/// no calendar dependency.
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (y + i64::from(m <= 2), m, d)
}

/// Min / Tukey-mean / max of one benchmark configuration, in
/// milliseconds.
#[derive(Debug, Clone, Copy)]
pub struct Timing {
    /// Fastest sample.
    pub min_ms: f64,
    /// Mean over samples inside the Tukey fences (raw mean below five
    /// samples).
    pub mean_ms: f64,
    /// Slowest sample.
    pub max_ms: f64,
}

/// Runs `f` once untimed, then `sample_size` timed iterations.
pub fn time_samples(sample_size: usize, mut f: impl FnMut()) -> Timing {
    f();
    let samples: Vec<Duration> = (0..sample_size.max(1))
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed()
        })
        .collect();
    let ms = |d: Duration| d.as_secs_f64() * 1e3;
    Timing {
        min_ms: ms(samples.iter().min().copied().unwrap_or_default()),
        mean_ms: ms(tukey_mean(&samples)),
        max_ms: ms(samples.iter().max().copied().unwrap_or_default()),
    }
}

/// The mean over samples inside `[Q1 − 1.5·IQR, Q3 + 1.5·IQR]`; raw mean
/// below five samples (the quartiles would be meaningless).
fn tukey_mean(samples: &[Duration]) -> Duration {
    let raw = samples.iter().sum::<Duration>() / samples.len() as u32;
    if samples.len() < 5 {
        return raw;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let (q1, q3) = (sorted[sorted.len() / 4], sorted[3 * sorted.len() / 4]);
    let fence = (q3 - q1).mul_f64(1.5);
    let lo = q1.checked_sub(fence).unwrap_or(Duration::ZERO);
    let hi = q3 + fence;
    let kept: Vec<Duration> = sorted
        .into_iter()
        .filter(|d| *d >= lo && *d <= hi)
        .collect();
    if kept.is_empty() {
        raw
    } else {
        kept.iter().sum::<Duration>() / kept.len() as u32
    }
}

/// Samples per configuration — matches the benches' `sample_size(10)`.
const SAMPLES: usize = 10;

/// Pairs in the shuffle workload — matches `benches/engine_shuffle.rs`.
const SHUFFLE_N: u64 = 300_000;

/// Worker counts the shuffle baseline sweeps.
const SHUFFLE_WORKERS: [usize; 4] = [1, 2, 4, 8];

/// Mean throughput for the machine-note and results rows.
fn melem_s(n: u64, mean_ms: f64) -> f64 {
    n as f64 / (mean_ms / 1e3).max(1e-12) / 1e6
}

/// The auto-generated machine note shared by every baseline.
fn machine_note(stamp: &MachineStamp) -> String {
    format!(
        "Auto-recorded by `cargo run --release -p mr-bench --bin record_bench` \
         ({} logical core{}, UTC date from the system clock). Worker counts above \
         the core count timeslice rather than parallelise; re-record on the target \
         machine before comparing absolute times across hosts.",
        stamp.cores,
        if stamp.cores == 1 { "" } else { "s" }
    )
}

/// Times one shuffle configuration (a key distribution at a worker
/// count) over `n` pairs.
fn shuffle_timing(n: u64, workers: usize, samples: usize, key_of: fn(u64) -> u64) -> Timing {
    let inputs: Vec<u64> = (0..n).collect();
    let mapper = FnMapper(move |x: &u64, emit: &mut dyn FnMut(u64, u64)| emit(key_of(*x), *x));
    let reducer = FnReducer(|k: &u64, vs: &[u64], emit: &mut dyn FnMut((u64, u64))| {
        emit((*k, vs.len() as u64))
    });
    let cfg = if workers == 1 {
        EngineConfig::sequential()
    } else {
        EngineConfig::parallel(workers)
    };
    time_samples(samples, || {
        black_box(
            run_round(black_box(&inputs), &mapper, &reducer, &cfg)
                .unwrap()
                .1
                .reducers,
        );
    })
}

/// Renders one `results` row of a shuffle baseline.
fn shuffle_row(group: &str, workers: usize, t: Timing, n: u64) -> String {
    format!(
        "    {{ \"group\": \"{group}\", \"workers\": {workers}, \"min_ms\": {:.2}, \
         \"mean_ms\": {:.2}, \"max_ms\": {:.2}, \"throughput_melem_s\": {:.3} }}",
        t.min_ms,
        t.mean_ms,
        t.max_ms,
        melem_s(n, t.mean_ms)
    )
}

/// Records `BENCH_shuffle.json`: the `engine_shuffle` workloads (uniform
/// and hot-key distributions at 1/2/4/8 workers) re-timed on this
/// machine. Returns the JSON text and the uniform workers=1 mean (the
/// headline the data-plane acceptance gate tracks).
pub fn record_shuffle(stamp: &MachineStamp) -> (String, f64) {
    let uniform: Vec<(usize, Timing)> = SHUFFLE_WORKERS
        .iter()
        .map(|&w| (w, shuffle_timing(SHUFFLE_N, w, SAMPLES, |x| x % 150_000)))
        .collect();
    let hot: Vec<(usize, Timing)> = SHUFFLE_WORKERS
        .iter()
        .map(|&w| {
            let t = shuffle_timing(SHUFFLE_N, w, SAMPLES, |x| {
                if x % 10 == 0 {
                    u64::MAX
                } else {
                    x % 135_000
                }
            });
            (w, t)
        })
        .collect();
    let uniform_w1 = uniform[0].1.mean_ms;
    let mut rows: Vec<String> = uniform
        .iter()
        .map(|&(w, t)| shuffle_row("engine_shuffle/uniform_150k", w, t, SHUFFLE_N))
        .collect();
    rows.extend(
        hot.iter()
            .map(|&(w, t)| shuffle_row("engine_shuffle/hot_key_10pct", w, t, SHUFFLE_N)),
    );
    let json = format!(
        r#"{{
  "bench": "engine_shuffle",
  "command": "cargo bench -p mr-bench --bench engine_shuffle",
  "recorded": "{date}",
  "machine": {{
    "cores": {cores},
    "note": "{note}"
  }},
  "workload": {{
    "pairs": {n},
    "uniform_150k": "300k pairs over 150k distinct keys, trivial map and reduce (shuffle-bound)",
    "hot_key_10pct": "300k pairs, 10% on one hub key, rest over 135k keys (partition-skew regime, paper §1.4)"
  }},
  "results": [
{rows}
  ],
  "summary": {{
    "uniform_150k_workers1_mean_ms": {w1:.2},
    "speedup_vs_btreemap_seed": {speedup:.2},
    "basis": "pre-columnar BTreeMap baseline (recorded 2026-07-29, same container class) measured mean 47.61 ms at workers=1; the columnar radix-partitioned data plane's acceptance floor is 5x",
    "hot_key_observation": "With 10% of pairs on one hub the hub's partition carries the load (RoundMetrics::shuffle partition_skew >> 1) and partitioning cannot help — the engine-level picture of the paper's §1.4 skew caveat."
  }}
}}
"#,
        date = stamp.date,
        cores = stamp.cores,
        note = machine_note(stamp),
        n = SHUFFLE_N,
        rows = rows.join(",\n"),
        w1 = uniform_w1,
        speedup = 47.61 / uniform_w1,
    );
    (json, uniform_w1)
}

/// Records `BENCH_frontier.json`: the full default-scale frontier sweep
/// timed at 1/2/4/8 fan-out workers. Returns the JSON text and the
/// workers=1 mean (fed into the plan baseline's decide-vs-do ratio).
pub fn record_frontier(stamp: &MachineStamp) -> (String, f64) {
    let timings: Vec<(usize, Timing)> = SHUFFLE_WORKERS
        .iter()
        .map(|&w| {
            let cfg = SweepConfig {
                sweep_workers: w,
                engine: EngineConfig::sequential(),
            };
            let t = time_samples(SAMPLES, || {
                let rep = sweep_all(black_box(&cfg));
                black_box(rep.families.iter().map(|f| f.points.len()).sum::<usize>());
            });
            (w, t)
        })
        .collect();
    let mean1 = timings[0].1.mean_ms;
    let mean8 = timings.last().unwrap().1.mean_ms;
    let rows: Vec<String> = timings
        .iter()
        .map(|&(w, t)| {
            format!(
                "    {{ \"group\": \"engine_frontier/sweep_all\", \"sweep_workers\": {w}, \
                 \"min_ms\": {:.2}, \"mean_ms\": {:.2}, \"max_ms\": {:.2} }}",
                t.min_ms, t.mean_ms, t.max_ms
            )
        })
        .collect();
    let json = format!(
        r#"{{
  "bench": "engine_frontier",
  "command": "cargo bench -p mr-bench --bench engine_frontier",
  "recorded": "{date}",
  "machine": {{
    "cores": {cores},
    "note": "{note}"
  }},
  "workload": {{
    "grid_points": 25,
    "description": "sweep_all over the six problem families (hamming-d1 b=10, triangles n=16, sample-c4 n=8, two-path n=16, join-cycle3 n=6, matmul n=8), each family's complete model instance executed through the engine, engine sequential per point"
  }},
  "results": [
{rows}
  ],
  "summary": {{
    "fanout_overhead_at_8_workers": {overhead:.2},
    "basis": "mean_ms(workers=8) / mean_ms(workers=1) = {mean8:.2} / {mean1:.2}",
    "determinism": "semantic_json() verified byte-identical across sweep_workers in {{1,2,3,8,32}} and engine workers in {{1,2,4}} (tests/frontier_battery.rs)"
  }}
}}
"#,
        date = stamp.date,
        cores = stamp.cores,
        note = machine_note(stamp),
        rows = rows.join(",\n"),
        overhead = mean8 / mean1,
    );
    (json, mean1)
}

/// Records `BENCH_plan.json`: `plan_all` at Default scale (pure
/// decision-making) and plan-then-execute at Small scale, with the
/// decide-vs-do ratio computed against the frontier sweep mean measured
/// in the same recording session.
pub fn record_plan(stamp: &MachineStamp, frontier_mean1_ms: f64) -> String {
    let plan_default = time_samples(SAMPLES, || {
        let plans = plan_all(black_box(&ClusterSpec::default()), Scale::Default).unwrap();
        black_box(plans.len());
    });
    let plan_exec = time_samples(SAMPLES, || {
        let plans = plan_all(black_box(&ClusterSpec::default()), Scale::Small).unwrap();
        black_box(plans.iter().map(|p| p.execute().outputs).sum::<u64>());
    });
    let row = |group: &str, t: Timing| {
        format!(
            "    {{ \"group\": \"{group}\", \"min_ms\": {:.2}, \"mean_ms\": {:.2}, \
             \"max_ms\": {:.2} }}",
            t.min_ms, t.mean_ms, t.max_ms
        )
    };
    format!(
        r#"{{
  "bench": "engine_plan",
  "command": "cargo bench -p mr-bench --bench engine_plan",
  "recorded": "{date}",
  "machine": {{
    "cores": {cores},
    "note": "{note}"
  }},
  "workload": {{
    "description": "plan_all/default_scale plans all six registry families at Default scale (census-prices every grid point, one simplex solve for the join exponents; no engine rounds). plan_and_execute/small_scale additionally executes each chosen plan on the engine at Small scale under its own predicted q and pairs hint.",
    "families": 6,
    "grid_points_priced_default": 25
  }},
  "results": [
{rows}
  ],
  "summary": {{
    "decide_vs_do_default_scale": {ratio:.2},
    "basis": "mean_ms(plan_all/default {plan:.2}) / mean_ms(engine_frontier sweep_all workers=1, {frontier:.2} measured in the same recording session). Planning builds only the planned family's instance (mr_core::family::family_by_name), so the remaining cost is that instance's construction plus census arithmetic",
    "exactness": "predicted (q, r) equal engine measurements at every chosen point; every execution runs under max_reducer_inputs = predicted_q with pairs_hint = predicted pairs (tests/planner_battery.rs, crates/plan/tests/proptest_planner.rs)"
  }}
}}
"#,
        date = stamp.date,
        cores = stamp.cores,
        note = machine_note(stamp),
        rows = [
            row("engine_plan/plan_all/default_scale", plan_default),
            row("engine_plan/plan_and_execute/small_scale", plan_exec)
        ]
        .join(",\n"),
        ratio = plan_default.mean_ms / frontier_mean1_ms,
        plan = plan_default.mean_ms,
        frontier = frontier_mean1_ms,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn civil_dates_are_correct() {
        assert_eq!(civil_from_days(0), (1970, 1, 1));
        assert_eq!(civil_from_days(19_000), (2022, 1, 8));
        // Leap day.
        assert_eq!(civil_from_days(18_321), (2020, 2, 29));
        assert_eq!(civil_from_days(-1), (1969, 12, 31));
    }

    #[test]
    fn machine_stamp_is_plausible() {
        let s = MachineStamp::detect();
        assert!(s.cores >= 1);
        // YYYY-MM-DD with a 20xx-century year.
        assert_eq!(s.date.len(), 10);
        assert!(s.date.starts_with("20"), "date {}", s.date);
        assert_eq!(s.date.as_bytes()[4], b'-');
        assert_eq!(s.date.as_bytes()[7], b'-');
    }

    #[test]
    fn time_samples_reports_ordered_statistics() {
        let mut runs = 0u32;
        let t = time_samples(6, || {
            runs += 1;
            std::hint::black_box((0..2_000u64).sum::<u64>());
        });
        // 1 warm-up + 6 samples.
        assert_eq!(runs, 7);
        assert!(t.min_ms <= t.mean_ms + 1e-9);
        assert!(t.mean_ms <= t.max_ms + 1e-9);
        assert!(t.min_ms >= 0.0);
    }

    #[test]
    fn tukey_mean_ignores_one_burst() {
        let mut samples = vec![Duration::from_millis(10); 9];
        samples.push(Duration::from_millis(100));
        assert_eq!(tukey_mean(&samples), Duration::from_millis(10));
    }

    #[test]
    fn shuffle_rows_render_valid_json_fragments() {
        // A tiny workload keeps this a format test, not a benchmark.
        let t = shuffle_timing(2_000, 2, 1, |x| x % 500);
        let row = shuffle_row("g", 2, t, 2_000);
        assert!(row.contains("\"group\": \"g\""));
        assert!(row.contains("\"workers\": 2"));
        assert!(row.contains("throughput_melem_s"));
        assert_eq!(row.matches('{').count(), row.matches('}').count());
    }
}
