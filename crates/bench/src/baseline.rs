//! Re-recordable benchmark baselines with an automatic machine stamp.
//!
//! The workspace root carries seven committed baselines —
//! `BENCH_shuffle.json`, `BENCH_frontier.json`, `BENCH_plan.json`,
//! `BENCH_dag.json`, `BENCH_delta.json`, `BENCH_pool.json`,
//! `BENCH_obs.json` — that pin
//! what the engine benchmarks measured on
//! a known machine. They used to be transcribed by hand from
//! `cargo bench` output, which is exactly the kind of step that silently
//! rots: the numbers change, the machine description doesn't, and nobody
//! can tell which container a baseline came from.
//!
//! This module makes re-recording a single command:
//!
//! ```text
//! cargo run --release -p mr-bench --bin record_bench [out_dir]
//! ```
//!
//! Each recorder re-runs its bench workload in process (same shapes as
//! `benches/engine_shuffle.rs`, `engine_frontier.rs`, `engine_plan.rs`,
//! `engine_dag.rs`, `engine_delta.rs`: one warm-up plus ten timed
//! samples per
//! configuration) and emits the baseline JSON with a [`MachineStamp`]
//! captured at run time — logical core count from
//! [`std::thread::available_parallelism`] and the UTC date from the
//! system clock — plus the workload parameters, so every baseline
//! records the machine and workload it actually measured.
//!
//! Every recorder is split into a *measure* half (the only part that
//! reads a clock) and a pure *render* half, so the round-trip tests can
//! prove the contract the committed files rely on: identical
//! measurements render byte-identically, and everything rendered parses
//! back through [`crate::json::parse`] with the stamp fields present.
//!
//! Like the offline criterion shim, the reported mean excludes Tukey
//! outliers (beyond 1.5×IQR): on shared machines one background burst
//! otherwise skews a 10-sample mean far from the typical iteration. Min
//! and max stay raw so the spread remains visible.

use crate::sweep::{sweep_all, SweepConfig};
use mr_core::family::Scale;
use mr_plan::{plan_all, plan_all_dags, plan_dag, ClusterSpec, DagWorkload};
use mr_sim::schema::ReducerId;
use mr_sim::{
    run_round, run_schema, run_schema_retained, DagJob, Delta, EngineConfig, Executor, FnMapper,
    FnReducer, Pipeline, SchemaJob, Seq,
};
use std::collections::BTreeSet;
use std::hint::black_box;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// What the recording machine looked like when a baseline was taken.
#[derive(Debug, Clone)]
pub struct MachineStamp {
    /// Logical cores visible to the process.
    pub cores: usize,
    /// UTC date of the recording, `YYYY-MM-DD`.
    pub date: String,
}

impl MachineStamp {
    /// Captures the current machine: core count and today's UTC date.
    pub fn detect() -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let secs = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        let (y, m, d) = civil_from_days((secs / 86_400) as i64);
        MachineStamp {
            cores,
            date: format!("{y:04}-{m:02}-{d:02}"),
        }
    }
}

/// Days-since-epoch to a proleptic Gregorian `(year, month, day)` —
/// Howard Hinnant's `civil_from_days` algorithm, so the date stamp needs
/// no calendar dependency.
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (y + i64::from(m <= 2), m, d)
}

/// Min / Tukey-mean / max of one benchmark configuration, in
/// milliseconds.
#[derive(Debug, Clone, Copy)]
pub struct Timing {
    /// Fastest sample.
    pub min_ms: f64,
    /// Mean over samples inside the Tukey fences (raw mean below five
    /// samples).
    pub mean_ms: f64,
    /// Slowest sample.
    pub max_ms: f64,
}

/// Runs `f` once untimed, then `sample_size` timed iterations.
pub fn time_samples(sample_size: usize, mut f: impl FnMut()) -> Timing {
    f();
    let samples: Vec<Duration> = (0..sample_size.max(1))
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed()
        })
        .collect();
    let ms = |d: Duration| d.as_secs_f64() * 1e3;
    Timing {
        min_ms: ms(samples.iter().min().copied().unwrap_or_default()),
        mean_ms: ms(tukey_mean(&samples)),
        max_ms: ms(samples.iter().max().copied().unwrap_or_default()),
    }
}

/// The mean over samples inside `[Q1 − 1.5·IQR, Q3 + 1.5·IQR]`; raw mean
/// below five samples (the quartiles would be meaningless).
fn tukey_mean(samples: &[Duration]) -> Duration {
    let raw = samples.iter().sum::<Duration>() / samples.len() as u32;
    if samples.len() < 5 {
        return raw;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let (q1, q3) = (sorted[sorted.len() / 4], sorted[3 * sorted.len() / 4]);
    let fence = (q3 - q1).mul_f64(1.5);
    let lo = q1.checked_sub(fence).unwrap_or(Duration::ZERO);
    let hi = q3 + fence;
    let kept: Vec<Duration> = sorted
        .into_iter()
        .filter(|d| *d >= lo && *d <= hi)
        .collect();
    if kept.is_empty() {
        raw
    } else {
        kept.iter().sum::<Duration>() / kept.len() as u32
    }
}

/// Samples per configuration — matches the benches' `sample_size(10)`.
const SAMPLES: usize = 10;

/// Pairs in the shuffle workload — matches `benches/engine_shuffle.rs`.
const SHUFFLE_N: u64 = 300_000;

/// Worker counts the shuffle baseline sweeps.
const SHUFFLE_WORKERS: [usize; 4] = [1, 2, 4, 8];

/// Mean throughput for the machine-note and results rows.
fn melem_s(n: u64, mean_ms: f64) -> f64 {
    n as f64 / (mean_ms / 1e3).max(1e-12) / 1e6
}

/// The auto-generated machine note shared by every baseline.
fn machine_note(stamp: &MachineStamp) -> String {
    format!(
        "Auto-recorded by `cargo run --release -p mr-bench --bin record_bench` \
         ({} logical core{}, UTC date from the system clock). Worker counts above \
         the core count timeslice rather than parallelise; re-record on the target \
         machine before comparing absolute times across hosts.",
        stamp.cores,
        if stamp.cores == 1 { "" } else { "s" }
    )
}

/// Times one shuffle configuration (a key distribution at a worker
/// count) over `n` pairs.
fn shuffle_timing(n: u64, workers: usize, samples: usize, key_of: fn(u64) -> u64) -> Timing {
    let inputs: Vec<u64> = (0..n).collect();
    let mapper = FnMapper(move |x: &u64, emit: &mut dyn FnMut(u64, u64)| emit(key_of(*x), *x));
    let reducer = FnReducer(|k: &u64, vs: &[u64], emit: &mut dyn FnMut((u64, u64))| {
        emit((*k, vs.len() as u64))
    });
    let cfg = if workers == 1 {
        EngineConfig::sequential()
    } else {
        EngineConfig::parallel(workers)
    };
    time_samples(samples, || {
        black_box(
            run_round(black_box(&inputs), &mapper, &reducer, &cfg)
                .unwrap()
                .1
                .reducers,
        );
    })
}

/// Renders one `results` row of a shuffle baseline.
fn shuffle_row(group: &str, workers: usize, t: Timing, n: u64) -> String {
    format!(
        "    {{ \"group\": \"{group}\", \"workers\": {workers}, \"min_ms\": {:.2}, \
         \"mean_ms\": {:.2}, \"max_ms\": {:.2}, \"throughput_melem_s\": {:.3} }}",
        t.min_ms,
        t.mean_ms,
        t.max_ms,
        melem_s(n, t.mean_ms)
    )
}

/// Records `BENCH_shuffle.json`: the `engine_shuffle` workloads (uniform
/// and hot-key distributions at 1/2/4/8 workers) re-timed on this
/// machine. Returns the JSON text and the uniform workers=1 mean (the
/// headline the data-plane acceptance gate tracks).
pub fn record_shuffle(stamp: &MachineStamp) -> (String, f64) {
    let uniform: Vec<(usize, Timing)> = SHUFFLE_WORKERS
        .iter()
        .map(|&w| (w, shuffle_timing(SHUFFLE_N, w, SAMPLES, |x| x % 150_000)))
        .collect();
    let hot: Vec<(usize, Timing)> = SHUFFLE_WORKERS
        .iter()
        .map(|&w| {
            let t = shuffle_timing(SHUFFLE_N, w, SAMPLES, |x| {
                if x % 10 == 0 {
                    u64::MAX
                } else {
                    x % 135_000
                }
            });
            (w, t)
        })
        .collect();
    render_shuffle(stamp, &uniform, &hot)
}

/// The pure render half of [`record_shuffle`]: baseline JSON from
/// already-taken measurements.
fn render_shuffle(
    stamp: &MachineStamp,
    uniform: &[(usize, Timing)],
    hot: &[(usize, Timing)],
) -> (String, f64) {
    let uniform_w1 = uniform[0].1.mean_ms;
    let mut rows: Vec<String> = uniform
        .iter()
        .map(|&(w, t)| shuffle_row("engine_shuffle/uniform_150k", w, t, SHUFFLE_N))
        .collect();
    rows.extend(
        hot.iter()
            .map(|&(w, t)| shuffle_row("engine_shuffle/hot_key_10pct", w, t, SHUFFLE_N)),
    );
    let json = format!(
        r#"{{
  "bench": "engine_shuffle",
  "command": "cargo bench -p mr-bench --bench engine_shuffle",
  "recorded": "{date}",
  "machine": {{
    "cores": {cores},
    "note": "{note}"
  }},
  "workload": {{
    "pairs": {n},
    "uniform_150k": "300k pairs over 150k distinct keys, trivial map and reduce (shuffle-bound)",
    "hot_key_10pct": "300k pairs, 10% on one hub key, rest over 135k keys (partition-skew regime, paper §1.4)"
  }},
  "results": [
{rows}
  ],
  "summary": {{
    "uniform_150k_workers1_mean_ms": {w1:.2},
    "speedup_vs_btreemap_seed": {speedup:.2},
    "basis": "pre-columnar BTreeMap baseline (recorded 2026-07-29, same container class) measured mean 47.61 ms at workers=1; the columnar radix-partitioned data plane's acceptance floor is 5x",
    "hot_key_observation": "With 10% of pairs on one hub the hub's partition carries the load (RoundMetrics::shuffle partition_skew >> 1) and partitioning cannot help — the engine-level picture of the paper's §1.4 skew caveat."
  }}
}}
"#,
        date = stamp.date,
        cores = stamp.cores,
        note = machine_note(stamp),
        n = SHUFFLE_N,
        rows = rows.join(",\n"),
        w1 = uniform_w1,
        speedup = 47.61 / uniform_w1,
    );
    (json, uniform_w1)
}

/// Records `BENCH_frontier.json`: the full default-scale frontier sweep
/// timed at 1/2/4/8 fan-out workers. Returns the JSON text and the
/// workers=1 mean (fed into the plan baseline's decide-vs-do ratio).
pub fn record_frontier(stamp: &MachineStamp) -> (String, f64) {
    let timings: Vec<(usize, Timing)> = SHUFFLE_WORKERS
        .iter()
        .map(|&w| {
            let cfg = SweepConfig {
                sweep_workers: w,
                ..SweepConfig::default()
            };
            let t = time_samples(SAMPLES, || {
                let rep = sweep_all(black_box(&cfg));
                black_box(rep.families.iter().map(|f| f.points.len()).sum::<usize>());
            });
            (w, t)
        })
        .collect();
    render_frontier(stamp, &timings)
}

/// The pure render half of [`record_frontier`].
fn render_frontier(stamp: &MachineStamp, timings: &[(usize, Timing)]) -> (String, f64) {
    let mean1 = timings[0].1.mean_ms;
    let mean8 = timings.last().unwrap().1.mean_ms;
    let rows: Vec<String> = timings
        .iter()
        .map(|&(w, t)| {
            format!(
                "    {{ \"group\": \"engine_frontier/sweep_all\", \"sweep_workers\": {w}, \
                 \"min_ms\": {:.2}, \"mean_ms\": {:.2}, \"max_ms\": {:.2} }}",
                t.min_ms, t.mean_ms, t.max_ms
            )
        })
        .collect();
    let json = format!(
        r#"{{
  "bench": "engine_frontier",
  "command": "cargo bench -p mr-bench --bench engine_frontier",
  "recorded": "{date}",
  "machine": {{
    "cores": {cores},
    "note": "{note}"
  }},
  "workload": {{
    "grid_points": 25,
    "description": "sweep_all over the six problem families (hamming-d1 b=10, triangles n=16, sample-c4 n=8, two-path n=16, join-cycle3 n=6, matmul n=8), each family's complete model instance executed through the engine, engine sequential per point"
  }},
  "results": [
{rows}
  ],
  "summary": {{
    "fanout_overhead_at_8_workers": {overhead:.2},
    "basis": "mean_ms(workers=8) / mean_ms(workers=1) = {mean8:.2} / {mean1:.2}",
    "determinism": "semantic_json() verified byte-identical across sweep_workers in {{1,2,3,8,32}} and engine workers in {{1,2,4}} (tests/frontier_battery.rs)"
  }}
}}
"#,
        date = stamp.date,
        cores = stamp.cores,
        note = machine_note(stamp),
        rows = rows.join(",\n"),
        overhead = mean8 / mean1,
    );
    (json, mean1)
}

/// Records `BENCH_plan.json`: `plan_all` at Default scale (pure
/// decision-making) and plan-then-execute at Small scale, with the
/// decide-vs-do ratio computed against the frontier sweep mean measured
/// in the same recording session.
pub fn record_plan(stamp: &MachineStamp, frontier_mean1_ms: f64) -> String {
    let plan_default = time_samples(SAMPLES, || {
        let plans = plan_all(black_box(&ClusterSpec::default()), Scale::Default).unwrap();
        black_box(plans.len());
    });
    let plan_exec = time_samples(SAMPLES, || {
        let plans = plan_all(black_box(&ClusterSpec::default()), Scale::Small).unwrap();
        black_box(
            plans
                .iter()
                .map(|p| p.execute().expect("plan fits its own budget").outputs)
                .sum::<u64>(),
        );
    });
    render_plan(stamp, plan_default, plan_exec, frontier_mean1_ms)
}

/// The pure render half of [`record_plan`].
fn render_plan(
    stamp: &MachineStamp,
    plan_default: Timing,
    plan_exec: Timing,
    frontier_mean1_ms: f64,
) -> String {
    let row = |group: &str, t: Timing| {
        format!(
            "    {{ \"group\": \"{group}\", \"min_ms\": {:.2}, \"mean_ms\": {:.2}, \
             \"max_ms\": {:.2} }}",
            t.min_ms, t.mean_ms, t.max_ms
        )
    };
    format!(
        r#"{{
  "bench": "engine_plan",
  "command": "cargo bench -p mr-bench --bench engine_plan",
  "recorded": "{date}",
  "machine": {{
    "cores": {cores},
    "note": "{note}"
  }},
  "workload": {{
    "description": "plan_all/default_scale plans all six registry families at Default scale (census-prices every grid point, one simplex solve for the join exponents; no engine rounds). plan_and_execute/small_scale additionally executes each chosen plan on the engine at Small scale under its own predicted q and pairs hint.",
    "families": 6,
    "grid_points_priced_default": 25
  }},
  "results": [
{rows}
  ],
  "summary": {{
    "decide_vs_do_default_scale": {ratio:.2},
    "basis": "mean_ms(plan_all/default {plan:.2}) / mean_ms(engine_frontier sweep_all workers=1, {frontier:.2} measured in the same recording session). Planning builds only the planned family's instance (mr_core::family::family_by_name), so the remaining cost is that instance's construction plus census arithmetic",
    "exactness": "predicted (q, r) equal engine measurements at every chosen point; every execution runs under max_reducer_inputs = predicted_q with pairs_hint = predicted pairs (tests/planner_battery.rs, crates/plan/tests/proptest_planner.rs)"
  }}
}}
"#,
        date = stamp.date,
        cores = stamp.cores,
        note = machine_note(stamp),
        rows = [
            row("engine_plan/plan_all/default_scale", plan_default),
            row("engine_plan/plan_and_execute/small_scale", plan_exec)
        ]
        .join(",\n"),
        ratio = plan_default.mean_ms / frontier_mean1_ms,
        plan = plan_default.mean_ms,
        frontier = frontier_mean1_ms,
    )
}

/// Records `BENCH_dag.json`: the `engine_dag` workload — the
/// round-structure search plus execution of every workload's chosen DAG
/// at Small scale, and the forced multi-round matmul tree (q-budget 8,
/// below n² = 16) as the dedicated multi-round data-plane measurement.
pub fn record_dag(stamp: &MachineStamp) -> String {
    let search_exec = time_samples(SAMPLES, || {
        let plans = plan_all_dags(black_box(&ClusterSpec::default()), Scale::Small).unwrap();
        black_box(
            plans
                .iter()
                .map(|p| p.execute().expect("plan fits its own budget").outputs)
                .sum::<u64>(),
        );
    });
    let tree_exec = time_samples(SAMPLES, || {
        let cluster = ClusterSpec::default().with_q_budget(8);
        let plan = plan_dag(black_box(DagWorkload::MatMul), &cluster, Scale::Small).unwrap();
        black_box(plan.execute().expect("plan fits its own budget").outputs);
    });
    render_dag(stamp, search_exec, tree_exec)
}

/// The pure render half of [`record_dag`].
fn render_dag(stamp: &MachineStamp, search_exec: Timing, tree_exec: Timing) -> String {
    let row = |group: &str, t: Timing| {
        format!(
            "    {{ \"group\": \"{group}\", \"min_ms\": {:.2}, \"mean_ms\": {:.2}, \
             \"max_ms\": {:.2} }}",
            t.min_ms, t.mean_ms, t.max_ms
        )
    };
    format!(
        r#"{{
  "bench": "engine_dag",
  "command": "cargo bench -p mr-bench --bench engine_dag",
  "recorded": "{date}",
  "machine": {{
    "cores": {cores},
    "note": "{note}"
  }},
  "workload": {{
    "description": "search_and_execute/small_scale enumerates every round structure for the three DAG workloads (matmul aggregation trees and one-phase tilings, multi-round Hamming splitting, join-then-aggregate pipelines), prices them per round, and executes each winner with per-round predicted q as that round's hard budget. matmul_tree/budget8 forces the below-n-squared regime (q-budget 8 < 16), so the winner is a genuine multi-round aggregation tree staged through DagJob.",
    "workloads": 3
  }},
  "results": [
{rows}
  ],
  "summary": {{
    "search_and_execute_vs_tree_only": {ratio:.2},
    "basis": "mean_ms(search_and_execute {se:.2}) / mean_ms(matmul_tree/budget8 {te:.2}); the search prices hamming/join candidates with one sequential reference execution each, so most of the full-path cost is candidate pricing, not the chosen plan's run",
    "exactness": "per-round predicted (q, r) equal engine measurements at every node of every chosen DAG (tests/dag_battery.rs, crates/plan/src/dag.rs tests)"
  }}
}}
"#,
        date = stamp.date,
        cores = stamp.cores,
        note = machine_note(stamp),
        rows = [
            row("engine_dag/search_and_execute/small_scale", search_exec),
            row("engine_dag/matmul_tree/budget8", tree_exec)
        ]
        .join(",\n"),
        ratio = search_exec.mean_ms / tree_exec.mean_ms,
        se = search_exec.mean_ms,
        te = tree_exec.mean_ms,
    )
}

/// Resident inputs in the delta baseline's instance.
const DELTA_N: u64 = 200_000;

/// Reducers the delta workload fans over.
const DELTA_GROUPS: u64 = 32_768;

/// Assignments per input (the workload's replication rate, paper §2.2).
const DELTA_REPS: u64 = 3;

/// Inputs removed *and* added per churn step (~0.26% of the instance).
const DELTA_K: u64 = 256;

/// The delta workload's mapping schema, shared with
/// `benches/engine_delta.rs`: input `x` lands on [`FanSchema::reps`]
/// distinct reducers out of [`FanSchema::groups`] (odd multipliers so
/// assignments spread), and reduce folds an order-sensitive rotate-xor
/// digest — a mis-merged or mis-ordered retained input list changes the
/// output, so the timed workload is also self-checking.
#[derive(Debug, Clone, Copy)]
pub struct FanSchema {
    /// Number of reducers the schema fans over.
    pub groups: u64,
    /// Distinct reducers each input is assigned to.
    pub reps: u64,
}

impl SchemaJob<u64, (u64, u64, u64)> for FanSchema {
    fn assign(&self, x: &u64) -> Vec<ReducerId> {
        let rids: BTreeSet<ReducerId> = (0..self.reps)
            .map(|j| x.wrapping_mul(2 * j + 7).wrapping_add(j) % self.groups)
            .collect();
        rids.into_iter().collect()
    }

    fn reduce(&self, r: ReducerId, inputs: &[u64], emit: &mut dyn FnMut((u64, u64, u64))) {
        emit((
            r,
            inputs.len() as u64,
            inputs.iter().fold(0u64, |acc, v| acc.rotate_left(9) ^ v),
        ));
    }
}

/// The `engine_delta` workload at its baseline parameters.
pub fn delta_schema() -> FanSchema {
    FanSchema {
        groups: DELTA_GROUPS,
        reps: DELTA_REPS,
    }
}

/// Times one worker count of the delta workload: a full re-run of the
/// resident instance, and one steady-state churn step against a retained
/// [`mr_sim::DeltaJob`] (remove the previously-added [`DELTA_K`] inputs,
/// add [`DELTA_K`] fresh ones — the instance size never drifts).
fn delta_timings(workers: usize, samples: usize) -> (Timing, Timing) {
    let schema = delta_schema();
    let cfg = if workers == 1 {
        EngineConfig::sequential()
    } else {
        EngineConfig::parallel(workers)
    };
    let base: Vec<u64> = (0..DELTA_N).collect();
    let full = time_samples(samples, || {
        black_box(
            run_schema(black_box(&base), &schema, &cfg)
                .unwrap()
                .1
                .reducers,
        );
    });
    let mut job =
        run_schema_retained(&base, schema, Pipeline::Columnar, &cfg).expect("no budget configured");
    let mut last: Vec<Seq> = (0..DELTA_K).collect();
    let mut next_value = DELTA_N;
    let churn = time_samples(samples, || {
        let fresh: Vec<u64> = (next_value..next_value + DELTA_K).collect();
        next_value += DELTA_K;
        let outcome = job
            .apply(&Delta::new(fresh, std::mem::take(&mut last)))
            .expect("no budget configured");
        last = outcome.added_seqs.collect();
        black_box(outcome.metrics.dirty_reducers);
    });
    (full, churn)
}

/// Records `BENCH_delta.json`: the `engine_delta` workload — a resident
/// 200k-input instance churned incrementally versus re-run from scratch
/// — timed at 1/2/4/8 workers on this machine.
pub fn record_delta(stamp: &MachineStamp) -> String {
    let timings: Vec<(usize, Timing, Timing)> = SHUFFLE_WORKERS
        .iter()
        .map(|&w| {
            let (full, churn) = delta_timings(w, SAMPLES);
            (w, full, churn)
        })
        .collect();
    render_delta(stamp, &timings)
}

/// The pure render half of [`record_delta`]; `timings` rows are
/// `(workers, full re-run, churn step)`.
fn render_delta(stamp: &MachineStamp, timings: &[(usize, Timing, Timing)]) -> String {
    let row = |group: &str, workers: usize, t: Timing| {
        format!(
            "    {{ \"group\": \"{group}\", \"workers\": {workers}, \"min_ms\": {:.3}, \
             \"mean_ms\": {:.3}, \"max_ms\": {:.3} }}",
            t.min_ms, t.mean_ms, t.max_ms
        )
    };
    let mut rows: Vec<String> = timings
        .iter()
        .map(|&(w, full, _)| row("engine_delta/full_rerun", w, full))
        .collect();
    rows.extend(
        timings
            .iter()
            .map(|&(w, _, churn)| row("engine_delta/steady_churn", w, churn)),
    );
    let (full1, churn1) = (timings[0].1.mean_ms, timings[0].2.mean_ms);
    format!(
        r#"{{
  "bench": "engine_delta",
  "command": "cargo bench -p mr-bench --bench engine_delta",
  "recorded": "{date}",
  "machine": {{
    "cores": {cores},
    "note": "{note}"
  }},
  "workload": {{
    "resident_inputs": {n},
    "reducers": {groups},
    "replication_rate": {reps},
    "churn_per_step": {k},
    "description": "a 200k-input instance held resident in a retained DeltaJob (columnar pipeline); each steady_churn step removes the {k} previously-added inputs and adds {k} fresh ones, so only the reducers the changed inputs map to re-execute (§2.2 obliviousness). full_rerun executes the same instance from scratch."
  }},
  "results": [
{rows}
  ],
  "summary": {{
    "delta_speedup_vs_full_rerun_workers1": {speedup:.1},
    "basis": "mean_ms(full_rerun workers=1, {full1:.2}) / mean_ms(steady_churn workers=1, {churn1:.3}); the churn touches {k2} of {n} inputs per step",
    "semantics": "each apply's retained result is byte-identical to a fresh full run of the live instance — crates/bench/tests/delta_battery.rs and crates/sim/tests/differential_fuzz.rs prove this for every registry family, delta kind, worker count 1-16, and both pipelines"
  }}
}}
"#,
        date = stamp.date,
        cores = stamp.cores,
        note = machine_note(stamp),
        n = DELTA_N,
        groups = DELTA_GROUPS,
        reps = DELTA_REPS,
        k = DELTA_K,
        k2 = 2 * DELTA_K,
        rows = rows.join(",\n"),
        speedup = full1 / churn1,
        full1 = full1,
        churn1 = churn1,
    )
}

/// Fan-out width of the pool baseline's groups.
const POOL_WORKERS: usize = 8;

/// Inputs the pool baseline's staged DAG reads.
const POOL_DAG_INPUTS: u64 = 20_000;

/// The pool baseline's DAG-round schema, shared with
/// `benches/engine_pool.rs`: the same fan shape as [`FanSchema`] but
/// closed over `u64` (DAG rounds feed outputs back in as inputs),
/// digesting each reducer's input list into one value.
#[derive(Debug, Clone, Copy)]
pub struct DagFanSchema {
    /// Number of reducers the schema fans over.
    pub groups: u64,
    /// Distinct reducers each input is assigned to.
    pub reps: u64,
}

impl SchemaJob<u64, u64> for DagFanSchema {
    fn assign(&self, x: &u64) -> Vec<u64> {
        let set: BTreeSet<u64> = (0..self.reps)
            .map(|j| x.wrapping_mul(2 * j + 7).wrapping_add(j) % self.groups)
            .collect();
        set.into_iter().collect()
    }

    fn reduce(&self, r: u64, inputs: &[u64], emit: &mut dyn FnMut(u64)) {
        let digest = inputs.iter().fold(0u64, |acc, v| acc.rotate_left(9) ^ v);
        emit(r.wrapping_mul(1_000_003).wrapping_add(digest));
    }
}

/// The diamond DAG the pool baseline stages (two independent sources, a
/// join node, a tail round), shared with `benches/engine_pool.rs` —
/// same-level fan-out plus nested pool-backed rounds inside pool-backed
/// nodes.
pub fn pool_dag() -> DagJob<u64> {
    let mut dag = DagJob::new();
    let schema = DagFanSchema {
        groups: 4_096,
        reps: 3,
    };
    let a = dag.add_schema_round("a", vec![], schema, Pipeline::Columnar);
    let b = dag.add_schema_round("b", vec![], schema, Pipeline::Columnar);
    let join = dag.add_schema_round("join", vec![a, b], schema, Pipeline::Columnar);
    dag.add_schema_round("tail", vec![join], schema, Pipeline::Columnar);
    dag
}

/// Times one executor of the `engine_pool` workload: a full schema round
/// over the resident instance, one steady-churn step against a retained
/// [`mr_sim::DeltaJob`], and the staged diamond DAG — all at
/// [`POOL_WORKERS`] fan-out.
fn pool_timings(executor: Executor, samples: usize) -> (Timing, Timing, Timing) {
    let schema = delta_schema();
    let cfg = EngineConfig::parallel(POOL_WORKERS).with_executor(executor);
    let base: Vec<u64> = (0..DELTA_N).collect();
    let full = time_samples(samples, || {
        black_box(
            run_schema(black_box(&base), &schema, &cfg)
                .unwrap()
                .1
                .reducers,
        );
    });
    let mut job =
        run_schema_retained(&base, schema, Pipeline::Columnar, &cfg).expect("no budget configured");
    let mut last: Vec<Seq> = (0..DELTA_K).collect();
    let mut next_value = DELTA_N;
    let churn = time_samples(samples, || {
        let fresh: Vec<u64> = (next_value..next_value + DELTA_K).collect();
        next_value += DELTA_K;
        let outcome = job
            .apply(&Delta::new(fresh, std::mem::take(&mut last)))
            .expect("no budget configured");
        last = outcome.added_seqs.collect();
        black_box(outcome.metrics.dirty_reducers);
    });
    let dag = pool_dag();
    let dag_inputs: Vec<u64> = (0..POOL_DAG_INPUTS).collect();
    let staged = time_samples(samples, || {
        black_box(
            dag.run(black_box(&dag_inputs), &cfg)
                .expect("no budget set")
                .1
                .rounds
                .len(),
        );
    });
    (full, churn, staged)
}

/// Records `BENCH_pool.json`: the `engine_pool` workload — the resident
/// worker-pool substrate against fresh scoped threads on a full round, a
/// steady churn step, and a staged DAG, at 8-way fan-out on this machine.
pub fn record_pool(stamp: &MachineStamp) -> String {
    let timings: Vec<(&'static str, Timing, Timing, Timing)> = Executor::ALL
        .into_iter()
        .map(|e| {
            let (full, churn, staged) = pool_timings(e, SAMPLES);
            (e.name(), full, churn, staged)
        })
        .collect();
    render_pool(stamp, &timings)
}

/// The pure render half of [`record_pool`]; `timings` rows are
/// `(executor, full round, churn step, staged DAG)` with the pool row
/// first (matching `Executor::ALL` order).
fn render_pool(stamp: &MachineStamp, timings: &[(&str, Timing, Timing, Timing)]) -> String {
    let row = |group: &str, executor: &str, t: Timing| {
        format!(
            "    {{ \"group\": \"{group}\", \"executor\": \"{executor}\", \"workers\": {POOL_WORKERS}, \
             \"min_ms\": {:.3}, \"mean_ms\": {:.3}, \"max_ms\": {:.3} }}",
            t.min_ms, t.mean_ms, t.max_ms
        )
    };
    let mut rows: Vec<String> = Vec::new();
    for &(executor, full, churn, staged) in timings {
        rows.push(row("engine_pool/full_round", executor, full));
        rows.push(row("engine_pool/steady_churn", executor, churn));
        rows.push(row("engine_pool/dag_staged", executor, staged));
    }
    let pool = timings
        .iter()
        .find(|t| t.0 == "pool")
        .expect("pool row present");
    let scoped = timings
        .iter()
        .find(|t| t.0 == "scoped")
        .expect("scoped row present");
    format!(
        r#"{{
  "bench": "engine_pool",
  "command": "cargo bench -p mr-bench --bench engine_pool",
  "recorded": "{date}",
  "machine": {{
    "cores": {cores},
    "note": "{note}"
  }},
  "workload": {{
    "resident_inputs": {n},
    "churn_per_step": {k},
    "dag_inputs": {dagn},
    "workers": {w},
    "description": "every group runs twice: executor=pool queues morsels to the resident parked-idle worker pool, executor=scoped spawns fresh std::thread::scope threads per fan-out (the retained oracle). full_round is one 200k-input schema round (three parallel phases); steady_churn is the incremental regime where rounds are tiny and frequent, so per-round substrate overhead dominates; dag_staged stages a diamond DAG (same-level fan-out plus nested pool-backed rounds)."
  }},
  "results": [
{rows}
  ],
  "summary": {{
    "churn_speedup_pool_vs_scoped": {churn_speedup:.2},
    "dag_speedup_pool_vs_scoped": {dag_speedup:.2},
    "basis": "mean_ms(steady_churn scoped {churn_scoped:.3}) / mean_ms(steady_churn pool {churn_pool:.3}); mean_ms(dag_staged scoped {dag_scoped:.3}) / mean_ms(dag_staged pool {dag_pool:.3})",
    "determinism": "outputs, semantic metrics, and overflow offenders are byte-identical across executors at every worker count 1-16 on every execution surface (crates/sim/tests/pool_battery.rs, differential_fuzz.rs)"
  }}
}}
"#,
        date = stamp.date,
        cores = stamp.cores,
        note = machine_note(stamp),
        n = DELTA_N,
        k = DELTA_K,
        dagn = POOL_DAG_INPUTS,
        w = POOL_WORKERS,
        rows = rows.join(",\n"),
        churn_speedup = scoped.2.mean_ms / pool.2.mean_ms,
        dag_speedup = scoped.3.mean_ms / pool.3.mean_ms,
        churn_scoped = scoped.2.mean_ms,
        churn_pool = pool.2.mean_ms,
        dag_scoped = scoped.3.mean_ms,
        dag_pool = pool.3.mean_ms,
    )
}

/// Times the `engine_obs` workload — the PR 9 `full_round` shape
/// (`delta_schema` over 200k inputs at 8-way pool fan-out) three ways:
/// `reference` and `disabled` are two measurements of the identical
/// recorder-off run (their delta is the A/B bound on disabled-mode
/// overhead: the instrumentation sites are live in both, so any cost
/// beyond measurement noise would separate them from the
/// pre-instrumentation baseline this workload reproduces), and `traced`
/// wraps the same round in [`mr_obs::record`].
///
/// Unlike the other recorders, the three variants are sampled
/// *interleaved* (reference, disabled, traced, reference, …) rather
/// than as three sequential groups: the overhead percentages divide two
/// means of near-identical cost, so slow machine-load drift between
/// sequential groups would dwarf the effect being measured.
fn obs_timings(samples: usize) -> (Timing, Timing, Timing) {
    let schema = delta_schema();
    let cfg = EngineConfig::parallel(POOL_WORKERS);
    let base: Vec<u64> = (0..DELTA_N).collect();
    let run = || {
        black_box(
            run_schema(black_box(&base), &schema, &cfg)
                .unwrap()
                .1
                .reducers,
        )
    };
    // Warm-up, as in `time_samples`.
    run();
    let mut raw: [Vec<Duration>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    for _ in 0..samples.max(1) {
        for (variant, bucket) in raw.iter_mut().enumerate() {
            let start = Instant::now();
            if variant == 2 {
                let (reducers, trace) = mr_obs::record(run);
                black_box((reducers, trace.total_events()));
            } else {
                run();
            }
            bucket.push(start.elapsed());
        }
    }
    let timing = |samples: &[Duration]| {
        let ms = |d: Duration| d.as_secs_f64() * 1e3;
        Timing {
            min_ms: ms(samples.iter().min().copied().unwrap_or_default()),
            mean_ms: ms(tukey_mean(samples)),
            max_ms: ms(samples.iter().max().copied().unwrap_or_default()),
        }
    };
    (timing(&raw[0]), timing(&raw[1]), timing(&raw[2]))
}

/// Records `BENCH_obs.json`: the `engine_obs` workload — recorder-off
/// vs recorder-on cost of one instrumented full round, with the
/// disabled-mode overhead target (<3% of `full_round`) made checkable.
pub fn record_obs(stamp: &MachineStamp) -> String {
    let (reference, disabled, traced) = obs_timings(SAMPLES);
    render_obs(stamp, reference, disabled, traced)
}

/// The pure render half of [`record_obs`].
fn render_obs(stamp: &MachineStamp, reference: Timing, disabled: Timing, traced: Timing) -> String {
    let row = |variant: &str, t: Timing| {
        format!(
            "    {{ \"group\": \"engine_obs/full_round\", \"variant\": \"{variant}\", \
             \"workers\": {POOL_WORKERS}, \"min_ms\": {:.3}, \"mean_ms\": {:.3}, \
             \"max_ms\": {:.3} }}",
            t.min_ms, t.mean_ms, t.max_ms
        )
    };
    let rows = [
        row("reference", reference),
        row("disabled", disabled),
        row("traced", traced),
    ]
    .join(",\n");
    format!(
        r#"{{
  "bench": "engine_obs",
  "command": "cargo bench -p mr-bench --bench engine_obs",
  "recorded": "{date}",
  "machine": {{
    "cores": {cores},
    "note": "{note}"
  }},
  "workload": {{
    "resident_inputs": {n},
    "workers": {w},
    "description": "the engine_pool full_round shape (delta_schema over 200k inputs, 8-way pool fan-out) timed three ways: reference and disabled are two independent recorder-off measurements of the identical instrumented round (their delta bounds the disabled-mode cost of the live instrumentation sites — one relaxed atomic load each — within measurement noise), traced wraps the same round in mr_obs::record (spans into per-worker lanes, deterministic merge)."
  }},
  "results": [
{rows}
  ],
  "summary": {{
    "disabled_overhead_pct": {disabled_pct:.2},
    "traced_overhead_pct": {traced_pct:.2},
    "target": "disabled-mode overhead <3% of full_round (the mr-obs near-zero-cost contract)",
    "basis": "disabled_overhead_pct = (mean_ms(disabled {d:.3}) - mean_ms(reference {r:.3})) / mean_ms(reference) * 100; traced_overhead_pct likewise vs disabled (traced {t:.3})",
    "determinism": "outputs and semantic metrics are byte-identical with the recorder on or off at every worker count 1-16 on every execution surface (crates/sim/tests/obs_battery.rs, differential_fuzz.rs)"
  }}
}}
"#,
        date = stamp.date,
        cores = stamp.cores,
        note = machine_note(stamp),
        n = DELTA_N,
        w = POOL_WORKERS,
        rows = rows,
        disabled_pct = (disabled.mean_ms - reference.mean_ms) / reference.mean_ms * 100.0,
        traced_pct = (traced.mean_ms - disabled.mean_ms) / disabled.mean_ms * 100.0,
        d = disabled.mean_ms,
        r = reference.mean_ms,
        t = traced.mean_ms,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn civil_dates_are_correct() {
        assert_eq!(civil_from_days(0), (1970, 1, 1));
        assert_eq!(civil_from_days(19_000), (2022, 1, 8));
        // Leap day.
        assert_eq!(civil_from_days(18_321), (2020, 2, 29));
        assert_eq!(civil_from_days(-1), (1969, 12, 31));
    }

    #[test]
    fn machine_stamp_is_plausible() {
        let s = MachineStamp::detect();
        assert!(s.cores >= 1);
        // YYYY-MM-DD with a 20xx-century year.
        assert_eq!(s.date.len(), 10);
        assert!(s.date.starts_with("20"), "date {}", s.date);
        assert_eq!(s.date.as_bytes()[4], b'-');
        assert_eq!(s.date.as_bytes()[7], b'-');
    }

    #[test]
    fn time_samples_reports_ordered_statistics() {
        let mut runs = 0u32;
        let t = time_samples(6, || {
            runs += 1;
            std::hint::black_box((0..2_000u64).sum::<u64>());
        });
        // 1 warm-up + 6 samples.
        assert_eq!(runs, 7);
        assert!(t.min_ms <= t.mean_ms + 1e-9);
        assert!(t.mean_ms <= t.max_ms + 1e-9);
        assert!(t.min_ms >= 0.0);
    }

    #[test]
    fn tukey_mean_ignores_one_burst() {
        let mut samples = vec![Duration::from_millis(10); 9];
        samples.push(Duration::from_millis(100));
        assert_eq!(tukey_mean(&samples), Duration::from_millis(10));
    }

    #[test]
    fn shuffle_rows_render_valid_json_fragments() {
        // A tiny workload keeps this a format test, not a benchmark.
        let t = shuffle_timing(2_000, 2, 1, |x| x % 500);
        let row = shuffle_row("g", 2, t, 2_000);
        assert!(row.contains("\"group\": \"g\""));
        assert!(row.contains("\"workers\": 2"));
        assert!(row.contains("throughput_melem_s"));
        assert_eq!(row.matches('{').count(), row.matches('}').count());
    }

    /// A synthetic measurement around `ms` (monotone min ≤ mean ≤ max).
    fn t(ms: f64) -> Timing {
        Timing {
            min_ms: ms * 0.9,
            mean_ms: ms,
            max_ms: ms * 1.2,
        }
    }

    fn stamp() -> MachineStamp {
        MachineStamp {
            cores: 8,
            date: "2026-08-08".to_string(),
        }
    }

    /// Every baseline rendered from one fixed set of synthetic
    /// measurements — the render halves take no clock, so this is the
    /// whole input space.
    fn all_rendered() -> Vec<(&'static str, String)> {
        let s = stamp();
        let sweep: Vec<(usize, Timing)> =
            vec![(1, t(40.0)), (2, t(24.0)), (4, t(16.0)), (8, t(12.0))];
        let delta: Vec<(usize, Timing, Timing)> = sweep
            .iter()
            .map(|&(w, full)| (w, full, t(full.mean_ms / 50.0)))
            .collect();
        let pool: Vec<(&str, Timing, Timing, Timing)> = vec![
            ("pool", t(30.0), t(0.4), t(6.0)),
            ("scoped", t(33.0), t(0.9), t(9.0)),
        ];
        vec![
            ("shuffle", render_shuffle(&s, &sweep, &sweep).0),
            ("frontier", render_frontier(&s, &sweep).0),
            ("plan", render_plan(&s, t(3.0), t(9.0), 40.0)),
            ("dag", render_dag(&s, t(12.0), t(1.5))),
            ("delta", render_delta(&s, &delta)),
            ("pool", render_pool(&s, &pool)),
            ("obs", render_obs(&s, t(30.0), t(30.3), t(34.0))),
        ]
    }

    #[test]
    fn rendered_baselines_parse_back_with_the_machine_stamp() {
        for (name, text) in all_rendered() {
            let v = crate::json::parse(&text).unwrap_or_else(|e| panic!("{name}: {e}\n{text}"));
            assert_eq!(
                v.get("recorded").unwrap().as_str(),
                Some("2026-08-08"),
                "{name}"
            );
            let machine = v.get("machine").unwrap();
            assert_eq!(machine.get("cores").unwrap().as_f64(), Some(8.0), "{name}");
            assert!(
                machine
                    .get("note")
                    .unwrap()
                    .as_str()
                    .unwrap()
                    .contains("record_bench"),
                "{name}: note must say how to re-record"
            );
            for field in ["bench", "command", "workload", "summary"] {
                assert!(v.get(field).is_some(), "{name}: missing \"{field}\"");
            }
            let results = v.get("results").unwrap().as_array().unwrap();
            assert!(!results.is_empty(), "{name}: empty results");
            for r in results {
                let mean = r.get("mean_ms").unwrap().as_f64().unwrap();
                assert!(mean > 0.0, "{name}: non-positive mean_ms");
            }
        }
    }

    #[test]
    fn re_recording_identical_measurements_is_byte_stable() {
        for ((name, a), (_, b)) in all_rendered().iter().zip(&all_rendered()) {
            assert_eq!(
                a, b,
                "{name}: render is not a pure function of its measurements"
            );
        }
    }

    #[test]
    fn committed_baselines_parse_back() {
        // The actual recorded artifacts at the workspace root, not a
        // re-render: whatever `record_bench` last wrote must still parse
        // and carry the stamp.
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        for name in [
            "BENCH_shuffle.json",
            "BENCH_frontier.json",
            "BENCH_plan.json",
            "BENCH_dag.json",
            "BENCH_delta.json",
            "BENCH_pool.json",
            "BENCH_obs.json",
        ] {
            let text = std::fs::read_to_string(root.join(name))
                .unwrap_or_else(|e| panic!("reading {name}: {e}"));
            let v = crate::json::parse(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
            let date = v.get("recorded").unwrap().as_str().unwrap();
            assert!(
                date.len() == 10 && date.starts_with("20"),
                "{name}: implausible recording date {date}"
            );
            let cores = v.get("machine").unwrap().get("cores").unwrap().as_f64();
            assert!(cores.unwrap() >= 1.0, "{name}: implausible core count");
            assert!(
                !v.get("results").unwrap().as_array().unwrap().is_empty(),
                "{name}: no results"
            );
        }
    }

    #[test]
    fn fan_schema_assignments_are_deterministic_and_in_range() {
        let schema = delta_schema();
        for x in [0u64, 1, 17, DELTA_N, u64::MAX] {
            let rids = schema.assign(&x);
            assert_eq!(rids, schema.assign(&x));
            assert!(!rids.is_empty() && rids.len() <= DELTA_REPS as usize);
            assert!(rids.windows(2).all(|w| w[0] < w[1]), "sorted + distinct");
            assert!(rids.iter().all(|&r| r < DELTA_GROUPS));
        }
    }
}
