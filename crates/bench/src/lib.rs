#![warn(missing_docs)]

//! Experiment drivers regenerating every table and figure of the paper.
//!
//! Each submodule of [`experiments`] reproduces one artifact (see
//! `EXPERIMENTS.md` at the workspace root for the index and the recorded
//! paper-vs-measured comparison). The `repro` binary prints them; the
//! Criterion benches in `benches/` time the underlying workloads.

pub mod experiments;
pub mod table;

pub use table::Table;
