#![warn(missing_docs)]

//! Experiment drivers regenerating every table and figure of the paper.
//!
//! Each submodule of [`experiments`] reproduces one artifact (see
//! `EXPERIMENTS.md` at the workspace root for the index and the recorded
//! paper-vs-measured comparison). The [`sweep`] module is the empirical
//! frontier subsystem: it executes every problem family's constructive
//! schemas through the engine over a q-grid and compares the measured
//! `(q, r)` curves with the §2.4 analytic lower bounds (`repro frontier`).
//! The `repro` binary prints them; the Criterion benches in `benches/`
//! time the underlying workloads, and the [`baseline`] module (via the
//! `record_bench` binary) re-records the committed `BENCH_*.json`
//! baselines with an automatic machine stamp.

pub mod baseline;
pub mod experiments;
pub mod json;
mod selectors;
pub mod sweep;
pub mod table;

pub use sweep::{sweep_all, sweep_families, SweepConfig, SweepReport};
pub use table::Table;
