//! Shared CLI selector parsing for the `repro` experiments that take
//! family/scale tokens (`frontier`, `plan`), so the two vocabularies
//! cannot drift apart token by token.

use mr_core::family::Scale;

/// Parses a scale token (`small`/`default`/`full`).
pub(crate) fn scale_token(token: &str) -> Option<Scale> {
    match token {
        "small" => Some(Scale::Small),
        "default" => Some(Scale::Default),
        "full" => Some(Scale::Full),
        _ => None,
    }
}

/// Records a scale selection, rejecting a second one.
pub(crate) fn set_scale(slot: &mut Option<Scale>, scale: Scale) -> Result<(), String> {
    if slot.is_some() {
        return Err("at most one scale selector (small/default/full) is allowed".into());
    }
    *slot = Some(scale);
    Ok(())
}

/// Adds `token` to `picked` when it names one of `names` (deduplicated,
/// canonical `&'static str`). Returns whether it matched.
pub(crate) fn pick_family(
    names: &[&'static str],
    token: &str,
    picked: &mut Vec<&'static str>,
) -> bool {
    match names.iter().find(|n| **n == token) {
        Some(&canon) => {
            if !picked.contains(&canon) {
                picked.push(canon);
            }
            true
        }
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_tokens_roundtrip() {
        assert_eq!(scale_token("small"), Some(Scale::Small));
        assert_eq!(scale_token("default"), Some(Scale::Default));
        assert_eq!(scale_token("full"), Some(Scale::Full));
        assert_eq!(scale_token("huge"), None);
    }

    #[test]
    fn second_scale_is_rejected() {
        let mut slot = None;
        set_scale(&mut slot, Scale::Small).unwrap();
        assert!(set_scale(&mut slot, Scale::Full).is_err());
        assert_eq!(slot, Some(Scale::Small));
    }

    #[test]
    fn families_are_picked_once() {
        let names = ["a", "b"];
        let mut picked = Vec::new();
        assert!(pick_family(&names, "a", &mut picked));
        assert!(pick_family(&names, "a", &mut picked));
        assert!(!pick_family(&names, "c", &mut picked));
        assert_eq!(picked, vec!["a"]);
    }
}
