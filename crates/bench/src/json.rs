//! Minimal hand-rolled JSON emission shared by the report writers.
//!
//! The repro subsystem's contract is **byte-identical output across
//! runs**, which rules out serialisation libraries with unstable
//! formatting (and the build environment is offline anyway). This module
//! centralises the three things every emitter needs — string escaping,
//! finite-number formatting, and an insertion-ordered object builder —
//! so `sweep.rs`, `table.rs`, and future report writers produce the same
//! dialect: compact objects, `", "` separators, shortest-round-trip
//! numbers.
//!
//! [`parse`] is the matching reader: a small recursive-descent parser
//! used by the baseline round-trip tests to prove that everything the
//! emitters and `record_bench` write parses back as JSON (emission
//! without a parser is exactly the kind of contract that silently rots).

/// Escapes a string for a JSON string literal (quotes, backslashes, and
/// control characters; everything else passes through).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number (shortest round-trip form).
///
/// # Panics
/// Panics on NaN or infinity: neither can appear in valid JSON, and the
/// report writers never legitimately produce them — failing loudly beats
/// emitting garbage.
pub fn num(x: f64) -> String {
    assert!(
        x.is_finite(),
        "non-finite value {x} cannot be emitted as JSON"
    );
    format!("{x}")
}

/// An insertion-ordered JSON object builder emitting the compact
/// single-line form `{"k": v, "k": v}`.
///
/// ```
/// use mr_bench::json::Obj;
/// let mut o = Obj::new();
/// o.str("algorithm", "splitting(c=2)").int("q", 32).num("r", 2.0);
/// assert_eq!(o.compact(), r#"{"algorithm": "splitting(c=2)", "q": 32, "r": 2}"#);
/// ```
#[derive(Debug, Default, Clone)]
pub struct Obj {
    fields: Vec<(String, String)>,
}

impl Obj {
    /// Creates an empty object.
    pub fn new() -> Self {
        Obj::default()
    }

    /// Appends a string field (escaped and quoted).
    pub fn str(&mut self, key: &str, value: &str) -> &mut Self {
        self.raw(key, format!("\"{}\"", escape(value)))
    }

    /// Appends an integer field.
    pub fn int(&mut self, key: &str, value: u64) -> &mut Self {
        self.raw(key, value.to_string())
    }

    /// Appends a float field via [`num`].
    ///
    /// # Panics
    /// Panics on non-finite values, like [`num`].
    pub fn num(&mut self, key: &str, value: f64) -> &mut Self {
        self.raw(key, num(value))
    }

    /// Appends a field with an already-serialised JSON value.
    pub fn raw(&mut self, key: &str, value: String) -> &mut Self {
        self.fields.push((escape(key), value));
        self
    }

    /// Renders the compact single-line form.
    pub fn compact(&self) -> String {
        let body: Vec<String> = self
            .fields
            .iter()
            .map(|(k, v)| format!("\"{k}\": {v}"))
            .collect();
        format!("{{{}}}", body.join(", "))
    }
}

/// A parsed JSON value, as read back by [`parse`].
///
/// Objects keep their fields in document order (the emitters are
/// insertion-ordered, and the round-trip tests compare against that
/// order); numbers are held as `f64`, which is lossless for every count
/// and millisecond figure the baselines record.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string literal, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in document order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field of an object; `None` for missing fields and
    /// non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses a complete JSON document (rejecting trailing garbage).
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while matches!(
            self.bytes.get(self.pos),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .filter(|x| x.is_finite())
            .map(Value::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or("unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or(format!("bad \\u escape at byte {}", self.pos))?;
                            // The emitters only write BMP escapes (control
                            // characters); surrogate pairs are out of
                            // dialect and rejected via `from_u32`.
                            out.push(
                                char::from_u32(hex)
                                    .ok_or(format!("bad \\u scalar at byte {}", self.pos))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // byte boundaries are trustworthy).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|e| format!("invalid UTF-8 at byte {}: {e}", self.pos))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_controls_and_quotes() {
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("x\ny"), "x\\u000ay");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn num_is_shortest_roundtrip() {
        assert_eq!(num(2.0), "2");
        assert_eq!(num(1.5), "1.5");
        assert_eq!(num(0.1), "0.1");
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn num_rejects_nan() {
        num(f64::NAN);
    }

    #[test]
    fn obj_preserves_insertion_order() {
        let mut o = Obj::new();
        o.int("b", 1).str("a", "x").num("c", 0.5);
        assert_eq!(o.compact(), r#"{"b": 1, "a": "x", "c": 0.5}"#);
    }

    #[test]
    fn obj_escapes_keys_and_values() {
        let mut o = Obj::new();
        o.str("k\"ey", "v\\al");
        assert_eq!(o.compact(), r#"{"k\"ey": "v\\al"}"#);
    }

    #[test]
    fn empty_obj_renders_braces() {
        assert_eq!(Obj::new().compact(), "{}");
    }

    #[test]
    fn parse_round_trips_what_obj_emits() {
        let mut o = Obj::new();
        o.str("name", "two-path\n\"quoted\"")
            .int("q", 32)
            .num("r", 2.5)
            .raw("ok", "true".to_string())
            .raw("tags", "[1, 2, 3]".to_string());
        let v = parse(&o.compact()).unwrap();
        assert_eq!(
            v.get("name").unwrap().as_str(),
            Some("two-path\n\"quoted\"")
        );
        assert_eq!(v.get("q").unwrap().as_f64(), Some(32.0));
        assert_eq!(v.get("r").unwrap().as_f64(), Some(2.5));
        assert_eq!(v.get("ok"), Some(&Value::Bool(true)));
        assert_eq!(
            v.get("tags").unwrap().as_array().unwrap(),
            &[Value::Num(1.0), Value::Num(2.0), Value::Num(3.0)]
        );
    }

    #[test]
    fn parse_handles_nesting_whitespace_and_negatives() {
        let v = parse("{\n  \"a\": [ {\"b\": -1.5e2}, null, false ]\n}\n").unwrap();
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr[0].get("b").unwrap().as_f64(), Some(-150.0));
        assert_eq!(arr[1], Value::Null);
        assert_eq!(arr[2], Value::Bool(false));
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        assert!(parse("{\"a\": 1,}").is_err());
        assert!(parse("{\"a\": 1} x").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("[1 2]").is_err());
        assert!(parse("").is_err());
    }
}
