//! Minimal hand-rolled JSON emission shared by the report writers.
//!
//! The repro subsystem's contract is **byte-identical output across
//! runs**, which rules out serialisation libraries with unstable
//! formatting (and the build environment is offline anyway). This module
//! centralises the three things every emitter needs — string escaping,
//! finite-number formatting, and an insertion-ordered object builder —
//! so `sweep.rs`, `table.rs`, and future report writers produce the same
//! dialect: compact objects, `", "` separators, shortest-round-trip
//! numbers.

/// Escapes a string for a JSON string literal (quotes, backslashes, and
/// control characters; everything else passes through).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number (shortest round-trip form).
///
/// # Panics
/// Panics on NaN or infinity: neither can appear in valid JSON, and the
/// report writers never legitimately produce them — failing loudly beats
/// emitting garbage.
pub fn num(x: f64) -> String {
    assert!(
        x.is_finite(),
        "non-finite value {x} cannot be emitted as JSON"
    );
    format!("{x}")
}

/// An insertion-ordered JSON object builder emitting the compact
/// single-line form `{"k": v, "k": v}`.
///
/// ```
/// use mr_bench::json::Obj;
/// let mut o = Obj::new();
/// o.str("algorithm", "splitting(c=2)").int("q", 32).num("r", 2.0);
/// assert_eq!(o.compact(), r#"{"algorithm": "splitting(c=2)", "q": 32, "r": 2}"#);
/// ```
#[derive(Debug, Default, Clone)]
pub struct Obj {
    fields: Vec<(String, String)>,
}

impl Obj {
    /// Creates an empty object.
    pub fn new() -> Self {
        Obj::default()
    }

    /// Appends a string field (escaped and quoted).
    pub fn str(&mut self, key: &str, value: &str) -> &mut Self {
        self.raw(key, format!("\"{}\"", escape(value)))
    }

    /// Appends an integer field.
    pub fn int(&mut self, key: &str, value: u64) -> &mut Self {
        self.raw(key, value.to_string())
    }

    /// Appends a float field via [`num`].
    ///
    /// # Panics
    /// Panics on non-finite values, like [`num`].
    pub fn num(&mut self, key: &str, value: f64) -> &mut Self {
        self.raw(key, num(value))
    }

    /// Appends a field with an already-serialised JSON value.
    pub fn raw(&mut self, key: &str, value: String) -> &mut Self {
        self.fields.push((escape(key), value));
        self
    }

    /// Renders the compact single-line form.
    pub fn compact(&self) -> String {
        let body: Vec<String> = self
            .fields
            .iter()
            .map(|(k, v)| format!("\"{k}\": {v}"))
            .collect();
        format!("{{{}}}", body.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_controls_and_quotes() {
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("x\ny"), "x\\u000ay");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn num_is_shortest_roundtrip() {
        assert_eq!(num(2.0), "2");
        assert_eq!(num(1.5), "1.5");
        assert_eq!(num(0.1), "0.1");
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn num_rejects_nan() {
        num(f64::NAN);
    }

    #[test]
    fn obj_preserves_insertion_order() {
        let mut o = Obj::new();
        o.int("b", 1).str("a", "x").num("c", 0.5);
        assert_eq!(o.compact(), r#"{"b": 1, "a": "x", "c": 0.5}"#);
    }

    #[test]
    fn obj_escapes_keys_and_values() {
        let mut o = Obj::new();
        o.str("k\"ey", "v\\al");
        assert_eq!(o.compact(), r#"{"k\"ey": "v\\al"}"#);
    }

    #[test]
    fn empty_obj_renders_braces() {
        assert_eq!(Obj::new().compact(), "{}");
    }
}
