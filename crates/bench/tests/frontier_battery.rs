//! Integration battery for the empirical frontier sweep (`repro
//! frontier`): the sweep's determinism contract across *both* worker
//! dimensions, and the per-family measured-vs-analytic ordering.

use mr_bench::sweep::{sweep_all, SweepConfig};
use mr_sim::EngineConfig;

fn config(sweep_workers: usize, engine: EngineConfig) -> SweepConfig {
    SweepConfig {
        sweep_workers,
        engine,
    }
}

#[test]
fn semantic_output_is_byte_identical_across_sweep_worker_counts() {
    let baseline = sweep_all(&config(1, EngineConfig::sequential())).semantic_json();
    for sweep_workers in [2usize, 3, 8, 32] {
        let got = sweep_all(&config(sweep_workers, EngineConfig::sequential())).semantic_json();
        assert_eq!(
            baseline, got,
            "sweep output diverged at sweep_workers={sweep_workers}"
        );
    }
}

#[test]
fn semantic_output_is_byte_identical_across_engine_worker_counts() {
    // The engine's own determinism contract, surfaced at sweep level: the
    // per-point rounds compute identical metrics whether each round runs
    // sequentially or on a partitioned shuffle.
    let baseline = sweep_all(&config(2, EngineConfig::sequential())).semantic_json();
    for engine_workers in [2usize, 4] {
        let got = sweep_all(&config(2, EngineConfig::parallel(engine_workers))).semantic_json();
        assert_eq!(
            baseline, got,
            "sweep output diverged at engine_workers={engine_workers}"
        );
    }
}

#[test]
fn every_family_dominates_its_analytic_bound() {
    // One assertion per family so a regression names the family, not just
    // the point.
    let report = sweep_all(&config(4, EngineConfig::sequential()));
    let expect = [
        "hamming-d1",
        "triangles",
        "sample-c4",
        "two-path",
        "join-cycle3",
        "matmul",
    ];
    assert_eq!(
        report.families.iter().map(|f| f.family).collect::<Vec<_>>(),
        expect
    );
    for family in expect {
        let fam = report
            .families
            .iter()
            .find(|f| f.family == family)
            .unwrap_or_else(|| panic!("family {family} missing from sweep"));
        assert!(!fam.points.is_empty(), "{family}: empty grid");
        for p in &fam.points {
            assert!(
                p.r >= p.bound - 1e-9,
                "{family} / {}: measured r={} below analytic bound={}",
                p.algorithm,
                p.r,
                p.bound
            );
        }
        // Non-vacuity: the clamp replaces sub-1 bounds by the trivial
        // r ≥ 1, which any valid schema meets by construction. Every
        // family's grid must contain at least one point where the
        // *unclamped* bound bites, or the r ≥ bound check above tests
        // nothing for that family.
        assert!(
            fam.points.iter().any(|p| p.bound > 1.0 + 1e-9),
            "{family}: clamped bound is 1 at every grid point — the r ≥ bound check is vacuous"
        );
    }
}

#[test]
fn full_json_adds_only_execution_metadata() {
    // The full serialisation must agree with the semantic one on every
    // semantic field — stripping the execution-metadata keys yields the
    // semantic document exactly.
    let report = sweep_all(&config(2, EngineConfig::sequential()));
    let full = report.full_json();
    let semantic = report.semantic_json();
    let stripped: String = full
        .lines()
        .filter(|l| !l.trim_start().starts_with("\"engine_workers\""))
        .map(|l| {
            let mut l = l.to_string();
            if let Some(at) = l.find(", \"partition_skew\"") {
                let tail_at = l.rfind('}').expect("point lines end with a brace");
                let tail = l[tail_at..].to_string();
                l.truncate(at);
                l.push_str(&tail);
            }
            l
        })
        .collect::<Vec<_>>()
        .join("\n");
    // Allow for the final trailing newline lost by lines().
    assert_eq!(semantic.trim_end(), stripped.trim_end());
}
