//! Integration battery for the empirical frontier sweep (`repro
//! frontier`): the sweep's determinism contract across *both* worker
//! dimensions, and the per-family measured-vs-analytic ordering. Family
//! lists come from the registry ([`mr_core::family`]) — the battery has
//! no family knowledge of its own, so a family added to the registry is
//! automatically under test.

use mr_bench::sweep::{sweep_all, sweep_families, SweepConfig};
use mr_core::family::{registry, sparse_scenarios, Scale};
use mr_sim::EngineConfig;

fn config(sweep_workers: usize, engine: EngineConfig) -> SweepConfig {
    SweepConfig {
        sweep_workers,
        engine,
        ..SweepConfig::default()
    }
}

#[test]
fn semantic_output_is_byte_identical_across_sweep_worker_counts() {
    let baseline = sweep_all(&config(1, EngineConfig::sequential())).semantic_json();
    for sweep_workers in [2usize, 3, 8, 32] {
        let got = sweep_all(&config(sweep_workers, EngineConfig::sequential())).semantic_json();
        assert_eq!(
            baseline, got,
            "sweep output diverged at sweep_workers={sweep_workers}"
        );
    }
}

#[test]
fn semantic_output_is_byte_identical_across_engine_worker_counts() {
    // The engine's own determinism contract, surfaced at sweep level: the
    // per-point rounds compute identical metrics whether each round runs
    // sequentially or on a partitioned shuffle. Since the registry
    // refactor the rounds run through the type-erased
    // `mr_sim::run_schema_dyn`, so this also pins the erased path's
    // metric equivalence end to end.
    let baseline = sweep_all(&config(2, EngineConfig::sequential())).semantic_json();
    for engine_workers in [2usize, 4] {
        let got = sweep_all(&config(2, EngineConfig::parallel(engine_workers))).semantic_json();
        assert_eq!(
            baseline, got,
            "sweep output diverged at engine_workers={engine_workers}"
        );
    }
}

#[test]
fn every_family_dominates_its_analytic_bound() {
    // One assertion per family so a regression names the family, not just
    // the point. The expected names pin the registry's contents: adding a
    // family without updating this list is a deliberate test failure, not
    // silence.
    let report = sweep_all(&config(4, EngineConfig::sequential()));
    let expect: Vec<&str> = registry().iter().map(|f| f.name()).collect();
    assert_eq!(
        expect,
        vec![
            "hamming-d1",
            "triangles",
            "sample-c4",
            "two-path",
            "join-cycle3",
            "matmul",
        ],
        "registry contents changed — update the battery's expectations"
    );
    assert_eq!(
        report.families.iter().map(|f| f.family).collect::<Vec<_>>(),
        expect
    );
    for family in expect {
        let fam = report
            .families
            .iter()
            .find(|f| f.family == family)
            .unwrap_or_else(|| panic!("family {family} missing from sweep"));
        assert!(!fam.points.is_empty(), "{family}: empty grid");
        for p in &fam.points {
            assert!(
                p.r >= p.bound - 1e-9,
                "{family} / {}: measured r={} below analytic bound={}",
                p.algorithm,
                p.r,
                p.bound
            );
        }
        // Non-vacuity: the clamp replaces sub-1 bounds by the trivial
        // r ≥ 1, which any valid schema meets by construction. Every
        // family's grid must contain at least one point where the
        // *unclamped* bound bites, or the r ≥ bound check above tests
        // nothing for that family.
        assert!(
            fam.points.iter().any(|p| p.bound > 1.0 + 1e-9),
            "{family}: clamped bound is 1 at every grid point — the r ≥ bound check is vacuous"
        );
    }
}

#[test]
fn sparse_scenarios_dominate_their_clamped_bounds() {
    // The §4.2/§5.3 edge-budget variants: seeded G(n, m) data graphs
    // through the same schemas. The §2.4 argument is instance-generic —
    // g bounds any reducer's coverage and every present occurrence must
    // be covered — so measured r ≥ the clamped bound with |I| = m and
    // |O| = the instance's occurrence count, at every grid point.
    let scenarios = sparse_scenarios(Scale::Default);
    assert_eq!(
        scenarios.iter().map(|f| f.name()).collect::<Vec<_>>(),
        vec!["triangles-gnm", "sample-c4-gnm"]
    );
    let report = sweep_families(&scenarios, &config(4, EngineConfig::sequential()));
    for fam in &report.families {
        assert!(!fam.points.is_empty(), "{}: empty grid", fam.family);
        for p in &fam.points {
            assert!(
                p.r >= p.bound - 1e-9,
                "{} / {}: measured r={} below clamped bound={}",
                fam.family,
                p.algorithm,
                p.r,
                p.bound
            );
            assert!(p.gap >= 1.0 - 1e-9);
            assert!(
                p.q <= p.q_declared,
                "{} / {}: sparse load {} exceeds the complete-instance budget {}",
                fam.family,
                p.algorithm,
                p.q,
                p.q_declared
            );
        }
        // Every grid point of a scenario found the same occurrences —
        // the output count is a property of the instance, not of k.
        let outputs: Vec<u64> = fam.points.iter().map(|p| p.outputs).collect();
        assert!(
            outputs.windows(2).all(|w| w[0] == w[1]),
            "{}: output count varies across the grid: {outputs:?}",
            fam.family
        );
    }
    // And the sparse sweep is deterministic too (seeded instances).
    let again = sweep_families(
        &sparse_scenarios(Scale::Default),
        &config(2, EngineConfig::sequential()),
    );
    assert_eq!(report.semantic_json(), again.semantic_json());
}

#[test]
fn full_json_adds_only_execution_metadata() {
    // The full serialisation must agree with the semantic one on every
    // semantic field — stripping the execution-metadata keys yields the
    // semantic document exactly.
    let report = sweep_all(&config(2, EngineConfig::sequential()));
    let full = report.full_json();
    let semantic = report.semantic_json();
    let stripped: String = full
        .lines()
        .filter(|l| !l.trim_start().starts_with("\"engine_workers\""))
        .map(|l| {
            let mut l = l.to_string();
            if let Some(at) = l.find(", \"partition_skew\"") {
                let tail_at = l.rfind('}').expect("point lines end with a brace");
                let tail = l[tail_at..].to_string();
                l.truncate(at);
                l.push_str(&tail);
            }
            l
        })
        .collect::<Vec<_>>()
        .join("\n");
    // Allow for the final trailing newline lost by lines().
    assert_eq!(semantic.trim_end(), stripped.trim_end());
}

#[test]
fn small_scale_registry_sweeps_deterministically() {
    // The scale presets ride the same fan-out/merge: byte-identical
    // semantic output across sweep worker counts at Small scale too.
    let families = mr_core::family::registry_at(Scale::Small);
    let baseline = sweep_families(&families, &config(1, EngineConfig::sequential()));
    let par = sweep_families(&families, &config(8, EngineConfig::sequential()));
    assert_eq!(baseline.semantic_json(), par.semantic_json());
    for fam in &baseline.families {
        for p in &fam.points {
            assert!(p.r >= p.bound - 1e-9, "{} / {}", fam.family, p.algorithm);
        }
    }
}
