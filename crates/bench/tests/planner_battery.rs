//! Planner-vs-sweep parity battery: the `mr-plan` decision layer against
//! the `mr-bench::sweep` ground truth.
//!
//! The planner never executes a candidate — it prices grid points with
//! map-side censuses and closed forms. The sweep executes *everything*.
//! Parity between the two is therefore the planner's whole correctness
//! story: for every registry family at Small scale, the planner's chosen
//! point's **measured** cost must be within 5% of the cheapest measured
//! sweep-grid point under the same `CostModel` (census exactness actually
//! makes them equal — the 5% tolerance is the acceptance contract, not
//! slack the implementation uses). The §6 matmul crossover gets its own
//! exact boundary check.

use mr_bench::sweep::{sweep_families, SweepConfig};
use mr_core::family::{registry_at, Scale};
use mr_plan::{plan_family, Choice, ClusterSpec};
use mr_sim::EngineConfig;

fn sweep_small() -> mr_bench::SweepReport {
    sweep_families(
        &registry_at(Scale::Small),
        &SweepConfig {
            sweep_workers: 2,
            ..SweepConfig::default()
        },
    )
}

/// Cluster profiles spanning the §1.2 regimes: the planner must match
/// the empirical optimum in all of them, not just at one price point.
fn profiles() -> Vec<(&'static str, ClusterSpec)> {
    vec![
        ("balanced", ClusterSpec::default()),
        ("comm-heavy", ClusterSpec::comm_heavy()),
        ("compute-heavy", ClusterSpec::compute_heavy()),
        (
            "latency-aware",
            ClusterSpec::new(4, 1.0, 0.1).with_latency_weight(0.01),
        ),
    ]
}

#[test]
fn planner_pick_is_within_5_percent_of_empirical_cheapest() {
    let report = sweep_small();
    for (profile, cluster) in profiles() {
        for fam in &report.families {
            let empirical_cheapest = fam
                .points
                .iter()
                .map(|p| cluster.cost(p.q as f64, p.r))
                .fold(f64::INFINITY, f64::min);
            let plan = plan_family(fam.family, &cluster, Scale::Small)
                .unwrap_or_else(|e| panic!("{}/{profile}: {e}", fam.family));
            let executed = plan
                .execute_with(&EngineConfig::sequential())
                .unwrap_or_else(|e| panic!("{}/{profile}: {e}", fam.family));
            assert!(
                executed.measured_cost <= 1.05 * empirical_cheapest + 1e-9,
                "{}/{profile}: planner picked {} at measured cost {}, but the sweep's \
                 cheapest point costs {}",
                fam.family,
                plan.schema,
                executed.measured_cost,
                empirical_cheapest
            );
        }
    }
}

#[test]
fn planner_predictions_equal_sweep_measurements_at_the_chosen_point() {
    // Stronger than the 5% contract: the chosen point must *be* a sweep
    // grid point, and the plan's predicted (q, r) must equal the sweep's
    // measurement of that exact point.
    let report = sweep_small();
    let cluster = ClusterSpec::default();
    for fam in &report.families {
        let plan = plan_family(fam.family, &cluster, Scale::Small).unwrap();
        let swept = fam
            .points
            .iter()
            .find(|p| p.algorithm == plan.schema)
            .unwrap_or_else(|| {
                panic!(
                    "{}: chose {} which the sweep never ran",
                    fam.family, plan.schema
                )
            });
        assert_eq!(plan.predicted_q, swept.q, "{}", fam.family);
        assert!(
            (plan.predicted_r - swept.r).abs() < 1e-12,
            "{}: predicted r={} vs swept {}",
            fam.family,
            plan.predicted_r,
            swept.r
        );
    }
}

#[test]
fn matmul_planner_switches_to_two_phase_exactly_below_n_squared() {
    // Small scale: n = 4, so n² = 16. The §6.3 communication curves tie
    // at q = n² and two-phase wins strictly below — the planner must flip
    // at exactly that boundary.
    let n_sq = 16u64;
    for budget in [n_sq - 1, n_sq - 4, 8, 4] {
        let plan = plan_family(
            "matmul",
            &ClusterSpec::default().with_q_budget(budget),
            Scale::Small,
        )
        .unwrap();
        assert!(
            matches!(plan.choice, Choice::MatMulTree { .. }),
            "budget {budget} < n²: expected a multi-round tree, got {}",
            plan.schema
        );
        // The multi-round job must honour the budget and its predictions.
        let report = plan.execute_with(&EngineConfig::sequential()).unwrap();
        assert!(report.measured_q <= budget);
        assert_eq!(report.measured_q, plan.predicted_q);
        assert!((report.measured_r - plan.predicted_r).abs() < 1e-12);
    }
    for budget in [n_sq, n_sq + 1, 2 * n_sq, 10 * n_sq] {
        let plan = plan_family(
            "matmul",
            &ClusterSpec::default().with_q_budget(budget),
            Scale::Small,
        )
        .unwrap();
        assert!(
            matches!(plan.choice, Choice::Registry { .. }),
            "budget {budget} ≥ n²: expected one-phase, got {}",
            plan.schema
        );
    }
}

#[test]
fn comm_heavy_and_compute_heavy_bracket_the_frontier() {
    // End-to-end sanity on the §1.2 story at sweep level: the comm-heavy
    // plan lands on each family's largest-q admissible grid point, the
    // compute-heavy plan on its smallest, and both are real sweep points.
    // Matmul is the exception on the compute-heavy side: the
    // round-structure search finds a multi-round aggregation tree whose
    // per-round reducers are *smaller* than any one-phase grid point —
    // the right answer when `b·q` dominates — so we assert the tree
    // undercuts the grid instead of matching its smallest point.
    let report = sweep_small();
    for fam in &report.families {
        let max_q = fam.points.iter().map(|p| p.q).max().unwrap();
        let min_q = fam.points.iter().map(|p| p.q).min().unwrap();
        let big = plan_family(fam.family, &ClusterSpec::comm_heavy(), Scale::Small).unwrap();
        let small = plan_family(fam.family, &ClusterSpec::compute_heavy(), Scale::Small).unwrap();
        assert_eq!(big.predicted_q, max_q, "{}: comm-heavy", fam.family);
        if fam.family == "matmul" {
            assert!(
                matches!(small.choice, Choice::MatMulTree { .. }),
                "matmul: compute-heavy should go multi-round, got {}",
                small.schema
            );
            assert!(
                small.predicted_q < min_q,
                "matmul: tree q={} should undercut the smallest grid q={min_q}",
                small.predicted_q
            );
        } else {
            assert_eq!(small.predicted_q, min_q, "{}: compute-heavy", fam.family);
        }
    }
}
