//! The registry-wide delta battery — the headline acceptance test for
//! incremental execution: `full_run(I ∪ ΔI) == apply(delta_run(ΔI),
//! retained)` **byte-identically** (outputs and semantic metrics) for
//! every registry family, every delta kind (adds, removes, mixed, empty,
//! full-churn), every worker count 1–16, through both the columnar and
//! retained naive pipelines — with the map-side census exact and a small
//! delta re-executing strictly fewer reducers than a full run uses.

use mr_core::family::{extended_registry, DeltaSpec, DynFamily, Scale};
use mr_sim::{EngineConfig, Pipeline};

/// The delta shapes the battery drives per family. `n` is the family's
/// instance size; every shape keeps indices in `0..n`.
fn delta_kinds(n: usize) -> Vec<(&'static str, DeltaSpec)> {
    let split = n - n / 5; // hold out ~20% of the instance
    vec![
        (
            "empty",
            DeltaSpec {
                base: (0..n).collect(),
                remove: vec![],
                add: vec![],
            },
        ),
        (
            "adds",
            DeltaSpec {
                base: (0..split).collect(),
                remove: vec![],
                add: (split..n).collect(),
            },
        ),
        (
            "removes",
            DeltaSpec {
                base: (0..n).collect(),
                remove: (0..n).step_by(5).collect(),
                add: vec![],
            },
        ),
        ("mixed", DeltaSpec::tail_churn(n)),
        (
            "full-churn",
            DeltaSpec {
                base: (0..split).collect(),
                remove: (0..split).collect(),
                add: (split..n).collect(),
            },
        ),
    ]
}

/// One family × one spec × one engine × one pipeline: assert the two
/// verdicts the typed layer computes (byte-identity against the fresh
/// full run, census exactness) plus the census-bound on dirty reducers.
fn assert_family_delta(
    fam: &dyn DynFamily,
    point: usize,
    kind: &str,
    spec: &DeltaSpec,
    engine: &EngineConfig,
    pipeline: Pipeline,
) {
    let census = fam.delta_census(point, spec);
    let report = fam.delta_run(point, engine, pipeline, spec);
    let label = format!(
        "{} [{kind}] workers={} {}",
        fam.name(),
        engine.effective_workers(),
        pipeline.name()
    );
    assert!(
        report.matches_full_run,
        "{label}: retained result diverged from the full run"
    );
    assert!(
        report.prediction_exact,
        "{label}: census mispredicted the delta"
    );
    assert_eq!(report.census, census, "{label}: census drifted");
    assert!(
        report.dirty_reducers <= census.dirty_reducers,
        "{label}: dirty {} above the census bound {}",
        report.dirty_reducers,
        census.dirty_reducers
    );
}

#[test]
fn every_family_every_kind_every_worker_count_both_pipelines() {
    for fam in extended_registry(Scale::Small) {
        let n = fam.num_inputs();
        for (kind, spec) in delta_kinds(n) {
            for workers in 1..=16usize {
                let engine = EngineConfig::parallel(workers);
                for pipeline in Pipeline::ALL {
                    assert_family_delta(fam.as_ref(), 0, kind, &spec, &engine, pipeline);
                }
            }
        }
    }
}

#[test]
fn deltas_also_land_on_every_grid_point() {
    // Worker-count and kind coverage above; here the grid axis — every
    // point of every family, one mixed churn, both pipelines.
    let engine = EngineConfig::parallel(4);
    for fam in extended_registry(Scale::Small) {
        let spec = DeltaSpec::tail_churn(fam.num_inputs());
        for point in 0..fam.grid().len() {
            for pipeline in Pipeline::ALL {
                assert_family_delta(fam.as_ref(), point, "mixed", &spec, &engine, pipeline);
            }
        }
    }
}

#[test]
fn small_deltas_beat_full_runs_on_reducer_count_and_shuffle_volume() {
    // The acceptance criterion's strict clause: a delta touching k ≪ n
    // inputs re-executes strictly fewer reducers than the full run uses
    // and ships strictly fewer pairs — measured at each family's
    // most-partitioned grid point.
    for fam in extended_registry(Scale::Small) {
        let n = fam.num_inputs();
        let point = (0..fam.grid().len())
            .max_by_key(|&p| fam.census(p).reducers)
            .unwrap();
        let spec = DeltaSpec {
            base: (0..n).collect(),
            remove: vec![0, n / 2],
            add: vec![],
        };
        let report = fam.delta_run(
            point,
            &EngineConfig::sequential(),
            Pipeline::Columnar,
            &spec,
        );
        assert!(
            report.matches_full_run && report.prediction_exact,
            "{}",
            fam.name()
        );
        assert!(
            report.dirty_reducers < report.full_reducers,
            "{}: dirty {} not strictly below full {}",
            fam.name(),
            report.dirty_reducers,
            report.full_reducers
        );
        assert!(
            report.delta_pairs < report.full_pairs,
            "{}: delta shuffle {} not strictly below full {}",
            fam.name(),
            report.delta_pairs,
            report.full_pairs
        );
    }
}
