//! Round-structure parity battery: the `mr-plan::dag` search against
//! the empirically-cheapest DAG found by *executing every candidate*.
//!
//! The search never executes the structure it picks to price it — matmul
//! candidates are priced by closed forms, Hamming and join candidates by
//! one sequential reference execution of the structure on the instance.
//! This battery closes the loop: for every workload with a multi-round
//! variant, it exhaustively executes every admissible round structure up
//! to depth 3 at Small scale, prices each from its *measured* per-round
//! `(q, r)`, and asserts the planner's pick lands within 5% of the
//! cheapest (per-round exactness makes them equal — the 5% is the
//! acceptance contract, not slack the implementation uses). Four cost
//! profiles spanning §1.2's regimes, including a round-latency profile
//! where a three-phase recursive tree must beat the flat two-phase
//! method. The retired hand-built two-phase planner arm survives as a
//! regression oracle: at every budget below n² the search must emit a
//! flat tree whose per-round numbers match §6.3's closed forms digit for
//! digit.

use mr_core::family::Scale;
use mr_plan::{
    enumerate_dag_candidates, plan_dag, ClusterSpec, DagPlan, DagStructure, DagWorkload,
};
use mr_sim::EngineConfig;

/// Cluster profiles spanning the §1.2 regimes. The latency-round
/// profile is the one where depth has a real price (ℓ = 0.05 per
/// critical-path level) *and* big reducers hurt quadratically — the
/// regime where deeper trees with smaller rounds genuinely win.
fn profiles() -> Vec<(&'static str, ClusterSpec)> {
    vec![
        ("balanced", ClusterSpec::default()),
        ("comm-heavy", ClusterSpec::comm_heavy()),
        ("compute-heavy", ClusterSpec::compute_heavy()),
        (
            "latency-round",
            ClusterSpec::new(4, 1.0, 0.1)
                .with_latency_weight(1.0)
                .with_round_latency(0.05),
        ),
    ]
}

/// Wraps a candidate structure as an executable plan (the battery's
/// "run everything" side deliberately bypasses the search).
fn executable(workload: DagWorkload, structure: DagStructure, cluster: &ClusterSpec) -> DagPlan {
    let dag = enumerate_dag_candidates(workload, Scale::Small)
        .into_iter()
        .find(|c| c.structure == structure)
        .expect("candidate exists")
        .dag;
    let predicted_cost = dag.cost(cluster);
    DagPlan {
        workload,
        structure,
        schema: structure.name(),
        dag,
        cluster: cluster.clone(),
        scale: Scale::Small,
        predicted_cost,
        rationale: String::new(),
    }
}

#[test]
fn planner_pick_is_within_5_percent_of_the_empirically_cheapest_dag() {
    for (profile, cluster) in profiles() {
        for workload in DagWorkload::ALL {
            // Execute EVERY admissible candidate up to depth 3 and price
            // it from its measured per-round (q, r).
            let mut cheapest = f64::INFINITY;
            let mut cheapest_name = String::new();
            let mut executed_any = false;
            for cand in enumerate_dag_candidates(workload, Scale::Small) {
                if !cand.dag.admitted_by(&cluster) || cand.dag.depth() > 3 {
                    continue;
                }
                let plan = executable(workload, cand.structure, &cluster);
                let report = plan
                    .execute_with(&EngineConfig::sequential())
                    .unwrap_or_else(|e| panic!("{}/{profile}: {e}", cand.structure.name()));
                executed_any = true;
                if report.measured_cost < cheapest {
                    cheapest = report.measured_cost;
                    cheapest_name = cand.structure.name();
                }
            }
            assert!(
                executed_any,
                "{}/{profile}: no admissible candidate",
                workload.name()
            );

            let plan = plan_dag(workload, &cluster, Scale::Small)
                .unwrap_or_else(|e| panic!("{}/{profile}: {e}", workload.name()));
            let report = plan.execute_with(&EngineConfig::sequential()).unwrap();
            assert!(
                report.measured_cost <= 1.05 * cheapest + 1e-9,
                "{}/{profile}: search picked {} at measured cost {}, but executing every \
                 structure found {cheapest_name} at {cheapest}",
                workload.name(),
                plan.schema,
                report.measured_cost,
            );
        }
    }
}

#[test]
fn per_round_predictions_are_census_exact_at_every_node() {
    for (profile, cluster) in profiles() {
        for workload in DagWorkload::ALL {
            let plan = plan_dag(workload, &cluster, Scale::Small).unwrap();
            let report = plan.execute_with(&EngineConfig::sequential()).unwrap();
            assert_eq!(report.rounds.len(), plan.dag.rounds.len());
            for obs in &report.rounds {
                assert_eq!(
                    obs.measured_q,
                    obs.predicted_q,
                    "{}/{profile}/{}: q",
                    workload.name(),
                    obs.name
                );
                assert!(
                    (obs.measured_r - obs.predicted_r).abs() < 1e-12,
                    "{}/{profile}/{}: predicted r={}, measured {}",
                    workload.name(),
                    obs.name,
                    obs.predicted_r,
                    obs.measured_r
                );
            }
            assert!(
                (report.measured_cost - plan.predicted_cost).abs() < 1e-9,
                "{}/{profile}: predicted cost {}, measured {}",
                workload.name(),
                plan.predicted_cost,
                report.measured_cost
            );
        }
    }
}

#[test]
fn crossover_boundary_matches_the_retired_two_phase_closed_forms() {
    // Small scale: n = 4, n² = 16. Below the boundary the search must
    // emit exactly the flat §6.3 two-phase method, and its numbers must
    // be the retired `Choice::TwoPhaseMatMul` planner arm's closed forms
    // digit for digit: q = max(2st, n/t), comm = 2n³/s + n³/t over the
    // two rounds, r = comm / (2n²).
    let n = 4u64;
    for budget in [15u64, 12, 8, 4] {
        let cluster = ClusterSpec::default().with_q_budget(budget);
        let plan = plan_dag(DagWorkload::MatMul, &cluster, Scale::Small).unwrap();
        let DagStructure::MatMulTree { s, t, fanin, .. } = plan.structure else {
            panic!("budget {budget} < n²: expected a tree, got {}", plan.schema);
        };
        assert_eq!(
            fanin,
            4 / t,
            "budget {budget}: the winner below n² is the flat two-phase method"
        );
        assert!(
            plan.schema.starts_with("two-phase(n=4"),
            "budget {budget}: schema {}",
            plan.schema
        );
        let (s, t) = (s as u64, t as u64);
        let comm = 2 * n.pow(3) / s + n.pow(3) / t;
        assert_eq!(plan.dag.max_q(), (2 * s * t).max(n / t), "budget {budget}");
        assert_eq!(plan.dag.total_pairs(), comm, "budget {budget}");
        assert!(
            (plan.dag.replication() - comm as f64 / (2.0 * (n * n) as f64)).abs() < 1e-12,
            "budget {budget}"
        );
        // And the execution reproduces those numbers to the pair.
        let report = plan.execute().unwrap();
        assert_eq!(report.rounds.len(), 2, "budget {budget}");
        assert!(report.rounds.iter().all(|r| r.measured_q == r.predicted_q));
    }
    // At and above n² the one-phase tiling wins (boundary inclusive).
    for budget in [16u64, 17, 32, 1000] {
        let cluster = ClusterSpec::default().with_q_budget(budget);
        let plan = plan_dag(DagWorkload::MatMul, &cluster, Scale::Small).unwrap();
        assert!(
            matches!(plan.structure, DagStructure::MatMulOnePhase { .. }),
            "budget {budget} ≥ n²: expected one-phase, got {}",
            plan.schema
        );
    }
}

#[test]
fn a_three_phase_tree_beats_two_phase_under_the_latency_profile() {
    // The acceptance case: with rounds priced at ℓ = 0.05 and reducer
    // loads priced quadratically, the depth-3 recursive tree (s = t = 1,
    // fanin = 2) undercuts every flat two-phase shape — added rounds buy
    // smaller reducers, and here that trade pays.
    let cluster = ClusterSpec::new(4, 1.0, 0.1)
        .with_latency_weight(1.0)
        .with_round_latency(0.05);
    let plan = plan_dag(DagWorkload::MatMul, &cluster, Scale::Small).unwrap();
    assert_eq!(
        plan.structure,
        DagStructure::MatMulTree {
            n: 4,
            s: 1,
            t: 1,
            fanin: 2
        },
        "got {}",
        plan.schema
    );
    assert_eq!(plan.dag.rounds.len(), 3);
    assert_eq!(plan.dag.depth(), 3);
    let flat_cheapest = enumerate_dag_candidates(DagWorkload::MatMul, Scale::Small)
        .into_iter()
        .filter(|c| {
            matches!(c.structure, DagStructure::MatMulTree { n, t, fanin, .. }
                if fanin >= n / t)
        })
        .map(|c| c.dag.cost(&cluster))
        .fold(f64::INFINITY, f64::min);
    assert!(
        plan.predicted_cost < flat_cheapest,
        "three-phase {} is not under the cheapest flat two-phase {flat_cheapest}",
        plan.predicted_cost
    );
    // The deep tree's execution still matches per round.
    let report = plan.execute().unwrap();
    assert!(report.rounds.iter().all(|r| r.measured_q == r.predicted_q));
    assert!((report.measured_cost - plan.predicted_cost).abs() < 1e-9);
}

#[test]
fn chosen_dags_are_worker_count_independent() {
    // Byte-identity of the underlying DagJob streams is proved at the
    // sim layer (differential fuzz); here the planned executions must
    // report identical (q, r, outputs) for every engine width.
    for workload in DagWorkload::ALL {
        let cluster = ClusterSpec::default().with_q_budget(8);
        let plan = match plan_dag(workload, &cluster, Scale::Small) {
            Ok(p) => p,
            Err(_) => plan_dag(workload, &ClusterSpec::default(), Scale::Small).unwrap(),
        };
        let seq = plan.execute_with(&EngineConfig::sequential()).unwrap();
        for workers in [1usize, 4, 16] {
            let par = plan.execute_with(&EngineConfig::parallel(workers)).unwrap();
            assert_eq!(seq.outputs, par.outputs, "{}/w{workers}", workload.name());
            assert_eq!(
                seq.measured_cost,
                par.measured_cost,
                "{}/w{workers}",
                workload.name()
            );
            for (a, b) in seq.rounds.iter().zip(&par.rounds) {
                assert_eq!(a.measured_q, b.measured_q, "{}/w{workers}", workload.name());
                assert_eq!(a.measured_r, b.measured_r, "{}/w{workers}", workload.name());
            }
        }
    }
}
