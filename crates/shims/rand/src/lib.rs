#![warn(missing_docs)]

//! Offline stand-in for the `rand` crate.
//!
//! The workspace builds in environments with no crates.io access, so this
//! shim provides exactly the surface the member crates use:
//!
//! * [`rngs::StdRng`] — a seeded SplitMix64 generator (deterministic per
//!   seed, which is all the experiments and tests require),
//! * [`SeedableRng::seed_from_u64`],
//! * [`RngExt::random`] and [`RngExt::random_range`] for the primitive
//!   numeric types and ranges the workspace samples.
//!
//! The generator is **not** cryptographic and the integer range sampling
//! uses plain rejection-free reduction; both are fine for seeded test-data
//! generation, which is this workspace's only use of randomness.

/// A source of raw random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose entire stream is a function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generator implementations.

    /// SplitMix64: tiny, fast, passes BigCrush, and — the property the
    /// workspace actually relies on — fully deterministic per seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Types that can be drawn uniformly from a generator via
/// [`RngExt::random`].
pub trait Standard: Sized {
    /// Draws one value.
    fn draw(rng: &mut dyn RngCore) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn draw(rng: &mut dyn RngCore) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn draw(rng: &mut dyn RngCore) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn draw(rng: &mut dyn RngCore) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw(rng: &mut dyn RngCore) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn draw(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges a value can be sampled from.
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_signed_sample_range!(i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * f64::draw(rng)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample(self, rng: &mut dyn RngCore) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * f32::draw(rng)
    }
}

/// Convenience sampling methods, blanket-implemented for every
/// [`RngCore`]. This plays the role of `rand::Rng` under the name the
/// workspace imports.
pub trait RngExt: RngCore {
    /// Draws a uniform value of type `T`.
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is outside `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} must be in [0,1]");
        f64::draw(self) < p
    }
}

impl<R: RngCore> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random_range(0u64..1000), b.random_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.random_range(3u32..17);
            assert!((3..17).contains(&x));
            let y = rng.random_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&y));
            let z = rng.random_range(5usize..=5);
            assert_eq!(z, 5);
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        let (mut lo, mut hi) = (false, false);
        for _ in 0..10_000 {
            let u: f64 = rng.random();
            lo |= u < 0.1;
            hi |= u > 0.9;
        }
        assert!(lo && hi, "samples never reached both tails");
    }
}
