#![warn(missing_docs)]

//! Offline stand-in for the `proptest` crate.
//!
//! The workspace builds with no crates.io access, so this shim implements
//! the subset of proptest the test suites use:
//!
//! * the [`proptest!`] macro (with the optional
//!   `#![proptest_config(...)]` header) generating one `#[test]` per
//!   property,
//! * [`Strategy`] implemented for numeric ranges and tuples, with the
//!   [`prop_map`](Strategy::prop_map),
//!   [`prop_flat_map`](Strategy::prop_flat_map),
//!   [`prop_filter`](Strategy::prop_filter), and
//!   [`prop_filter_map`](Strategy::prop_filter_map) combinators,
//! * [`collection::vec`] with exact, half-open, or inclusive size ranges,
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`].
//!
//! Differences from real proptest, deliberate for an offline shim: cases
//! are generated from a seed derived from the test's name (fully
//! deterministic run to run), and failing cases are reported by panic
//! without shrinking.

use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    //! The deterministic RNG driving generation.

    /// SplitMix64 stream seeded from the property's name: every run of a
    //  given test sees the same cases.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from an arbitrary string (FNV-1a hash).
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// Returns the next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform `u64` in `[0, bound)`.
        ///
        /// # Panics
        /// Panics if `bound` is zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "cannot sample below 0");
            self.next_u64() % bound
        }
    }
}

use test_runner::TestRng;

/// How many consecutive rejections (from `prop_filter` /
/// `prop_filter_map`) a single case tolerates before the test aborts.
const MAX_REJECTS: u32 = 10_000;

/// Run-count configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property is run with.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of test values.
///
/// `generate` returns `None` when a filter rejected the candidate; the
/// driver retries (up to `MAX_REJECTS` times) with fresh randomness.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Produces one candidate value, or `None` on filter rejection.
    fn generate(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Produces one value, retrying rejections.
    ///
    /// # Panics
    /// Panics if the strategy rejects `MAX_REJECTS` candidates in a row.
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        for _ in 0..MAX_REJECTS {
            if let Some(v) = self.generate(rng) {
                return v;
            }
        }
        panic!("strategy rejected {MAX_REJECTS} candidates in a row");
    }

    /// Transforms generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Keeps only values for which `f` returns `true`.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            _whence: whence,
            f,
        }
    }

    /// Simultaneously filters and maps: `None` rejects the candidate.
    fn prop_filter_map<O, F: Fn(Self::Value) -> Option<O>>(
        self,
        whence: &'static str,
        f: F,
    ) -> FilterMap<Self, F>
    where
        Self: Sized,
    {
        FilterMap {
            inner: self,
            _whence: whence,
            f,
        }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.generate(rng).map(&self.f)
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> Option<T::Value> {
        let v = self.inner.generate(rng)?;
        (self.f)(v).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    _whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        self.inner.generate(rng).filter(&self.f)
    }
}

/// Strategy returned by [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    _whence: &'static str,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.generate(rng).and_then(&self.f)
    }
}

/// A strategy that always produces a clone of the same value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                Some(self.start + rng.below(span) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return Some(rng.next_u64() as $t);
                }
                Some(lo + rng.below(span + 1) as $t)
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end.wrapping_sub(self.start) as u64;
                Some(self.start.wrapping_add(rng.below(span) as $t))
            }
        }
    )*};
}

impl_signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> Option<f64> {
        assert!(self.start < self.end, "empty range strategy");
        Some(self.start + (self.end - self.start) * rng.unit_f64())
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> Option<f32> {
        assert!(self.start < self.end, "empty range strategy");
        Some(self.start + (self.end - self.start) * rng.unit_f64() as f32)
    }
}

macro_rules! impl_tuple_strategy {
    ($($S:ident : $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
                Some(($(self.$idx.generate(rng)?,)+))
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

pub mod collection {
    //! Strategies for collections.

    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo
                + if span == 0 {
                    0
                } else {
                    rng.below(span + 1) as usize
                };
            let mut out = Vec::with_capacity(len);
            for _ in 0..len {
                out.push(self.element.generate(rng)?);
            }
            Some(out)
        }
    }

    /// Generates `Vec`s of `element` values with a length drawn from
    /// `size` (an exact `usize`, a half-open range, or an inclusive
    /// range).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    //! Single-import surface mirroring `proptest::prelude`.

    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property, failing the case on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over generated cases.
///
/// An optional `#![proptest_config(ProptestConfig::with_cases(n))]` first
/// line sets the case count for every property in the block.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng =
                $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for _case in 0..config.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..10, y in 0.5f64..2.0, n in 1usize..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.5..2.0).contains(&y));
            prop_assert!((1..=4).contains(&n));
        }

        #[test]
        fn vec_lengths_respected(v in collection::vec(0u32..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&e| e < 5));
        }

        #[test]
        fn tuples_and_combinators(
            pair in (1u32..4, 1u32..4).prop_map(|(a, b)| a * b),
            odd in (0u64..100).prop_filter("odd", |v| v % 2 == 1),
        ) {
            prop_assert!((1..=9).contains(&pair));
            prop_assert!(odd % 2 == 1);
        }
    }

    #[test]
    fn flat_map_chains_strategies() {
        let strat = (2usize..5).prop_flat_map(|n| collection::vec(0u32..10, n));
        let mut rng = crate::test_runner::TestRng::deterministic("flat_map");
        for _ in 0..50 {
            let v = strat.sample(&mut rng);
            assert!(v.len() >= 2 && v.len() < 5);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = collection::vec(0u32..1000, 0..50);
        let mut a = crate::test_runner::TestRng::deterministic("det");
        let mut b = crate::test_runner::TestRng::deterministic("det");
        for _ in 0..20 {
            assert_eq!(strat.sample(&mut a), strat.sample(&mut b));
        }
    }
}
