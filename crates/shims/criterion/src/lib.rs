#![warn(missing_docs)]

//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of the Criterion API the `mr-bench` benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`Throughput`],
//! and the [`criterion_group!`] / [`criterion_main!`] macros — backed by a
//! simple wall-clock timer instead of Criterion's statistical machinery.
//!
//! Each benchmark runs `sample_size` timed iterations (after one warm-up)
//! and reports the minimum, mean, and maximum per-iteration time, plus
//! derived throughput when [`BenchmarkGroup::throughput`] was set. That is
//! deliberately cruder than real Criterion but keeps `cargo bench` useful
//! for relative comparisons with zero external dependencies.
//!
//! Two refinements mirror real Criterion's behaviour:
//!
//! * the reported **mean excludes Tukey outliers** (samples beyond 1.5×IQR
//!   of the quartiles) when at least five samples were taken — on shared
//!   machines a background burst otherwise drags the mean of a 10-sample
//!   run far from the typical iteration. The min and max stay raw, so the
//!   full spread remains visible.
//! * passing **`--test`** (as `cargo bench -- --test` does) runs every
//!   benchmark exactly once with no warm-up and reports `(smoke test)`
//!   instead of timings — CI uses this to prove the bench targets still
//!   *run*, not just compile, without paying for timed samples.

use std::fmt::Display;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, rendered `name/param`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Units processed per iteration, used to derive throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Times closures via [`Bencher::iter`].
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    test_mode: bool,
}

impl Bencher {
    /// Runs `f` once to warm up, then `sample_size` timed iterations.
    /// In `--test` smoke mode: one untimed iteration, nothing recorded.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        self.samples.clear();
        black_box(f());
        if self.test_mode {
            return;
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    test_mode: bool,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares how much work one iteration performs.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoLabel,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            test_mode: self.test_mode,
        };
        f(&mut b);
        report(
            &self.name,
            &id.into_label(),
            &b.samples,
            self.throughput,
            self.test_mode,
        );
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoLabel,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            test_mode: self.test_mode,
        };
        f(&mut b, input);
        report(
            &self.name,
            &id.into_label(),
            &b.samples,
            self.throughput,
            self.test_mode,
        );
        self
    }

    /// Ends the group (a no-op in this shim, kept for API parity).
    pub fn finish(self) {}
}

/// Conversion of benchmark identifiers (strings or [`BenchmarkId`]) to a
/// printable label.
pub trait IntoLabel {
    /// Renders the identifier.
    fn into_label(self) -> String;
}

impl IntoLabel for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

impl IntoLabel for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoLabel for String {
    fn into_label(self) -> String {
        self
    }
}

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 0,
            // `cargo bench -- --test` forwards `--test` to the bench
            // binary; real Criterion treats it as "run once, don't time".
            test_mode: std::env::args().skip(1).any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: if self.default_sample_size == 0 {
                10
            } else {
                self.default_sample_size
            },
            throughput: None,
            test_mode: self.test_mode,
            _criterion: self,
        }
    }

    /// Benchmarks a standalone function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoLabel,
        mut f: F,
    ) -> &mut Self {
        let test_mode = self.test_mode;
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: 10,
            test_mode,
        };
        f(&mut b);
        report("", &id.into_label(), &b.samples, None, test_mode);
        self
    }
}

/// The mean over samples inside the Tukey fences `[Q1 − 1.5·IQR,
/// Q3 + 1.5·IQR]`, matching real Criterion's outlier classification.
/// With fewer than five samples the quartiles are meaningless, so the
/// raw mean is returned.
fn tukey_mean(samples: &[Duration]) -> Duration {
    let raw_mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    if samples.len() < 5 {
        return raw_mean;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let q1 = sorted[sorted.len() / 4];
    let q3 = sorted[(3 * sorted.len()) / 4];
    let fence = (q3 - q1).mul_f64(1.5);
    let lo = q1.checked_sub(fence).unwrap_or(Duration::ZERO);
    let hi = q3 + fence;
    let kept: Vec<Duration> = sorted
        .into_iter()
        .filter(|d| *d >= lo && *d <= hi)
        .collect();
    if kept.is_empty() {
        raw_mean
    } else {
        kept.iter().sum::<Duration>() / kept.len() as u32
    }
}

fn report(
    group: &str,
    label: &str,
    samples: &[Duration],
    throughput: Option<Throughput>,
    test_mode: bool,
) {
    let full = if group.is_empty() {
        label.to_string()
    } else {
        format!("{group}/{label}")
    };
    if test_mode {
        println!("{full:<48} (smoke test: ran once, untimed)");
        return;
    }
    if samples.is_empty() {
        println!("{full:<48} (no samples — did the bench call iter?)");
        return;
    }
    let min = samples.iter().min().copied().unwrap_or_default();
    let max = samples.iter().max().copied().unwrap_or_default();
    let mean = tukey_mean(samples);
    print!(
        "{full:<48} time: [{} {} {}]",
        fmt_duration(min),
        fmt_duration(mean),
        fmt_duration(max)
    );
    if let Some(t) = throughput {
        let per_sec = |units: u64| units as f64 / mean.as_secs_f64().max(1e-12);
        match t {
            Throughput::Elements(n) => print!("  thrpt: {:.3} Melem/s", per_sec(n) / 1e6),
            Throughput::Bytes(n) => print!("  thrpt: {:.3} MiB/s", per_sec(n) / (1024.0 * 1024.0)),
        }
    }
    println!();
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Bundles benchmark functions into a single runner, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        /// Runs every benchmark registered in this group.
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates the benchmark binary's `main`, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut grp = c.benchmark_group("shim_smoke");
        grp.sample_size(3);
        grp.throughput(Throughput::Elements(100));
        let mut ran = 0u32;
        grp.bench_function("counting", |b| {
            b.iter(|| {
                ran += 1;
                (0..100u64).sum::<u64>()
            })
        });
        grp.bench_with_input(BenchmarkId::new("with_input", 7), &7u64, |b, &x| {
            b.iter(|| x * 2)
        });
        grp.finish();
        // 1 warm-up + 3 samples for the first bench.
        assert_eq!(ran, 4);
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("f", 3).into_label(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").into_label(), "x");
    }

    #[test]
    fn test_mode_runs_each_bench_exactly_once() {
        let mut c = Criterion {
            default_sample_size: 0,
            test_mode: true,
        };
        let mut grp = c.benchmark_group("smoke");
        grp.sample_size(10);
        let mut ran = 0u32;
        grp.bench_function("counting", |b| {
            b.iter(|| {
                ran += 1;
                ran
            })
        });
        grp.finish();
        // No warm-up, no samples: one iteration total.
        assert_eq!(ran, 1);
    }

    #[test]
    fn tukey_mean_discards_a_background_burst() {
        // Nine quiet 10ms samples and one 100ms burst: the raw mean would
        // be 19ms, the Tukey-filtered mean stays at the typical 10ms.
        let mut samples = vec![Duration::from_millis(10); 9];
        samples.push(Duration::from_millis(100));
        assert_eq!(tukey_mean(&samples), Duration::from_millis(10));
        // Below five samples the raw mean is reported unchanged.
        let few = vec![Duration::from_millis(10), Duration::from_millis(100)];
        assert_eq!(tukey_mean(&few), Duration::from_millis(55));
    }
}
