#![warn(missing_docs)]

//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of the Criterion API the `mr-bench` benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`Throughput`],
//! and the [`criterion_group!`] / [`criterion_main!`] macros — backed by a
//! simple wall-clock timer instead of Criterion's statistical machinery.
//!
//! Each benchmark runs `sample_size` timed iterations (after one warm-up)
//! and reports the minimum, mean, and maximum per-iteration time, plus
//! derived throughput when [`BenchmarkGroup::throughput`] was set. That is
//! deliberately cruder than real Criterion but keeps `cargo bench` useful
//! for relative comparisons with zero external dependencies.

use std::fmt::Display;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, rendered `name/param`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Units processed per iteration, used to derive throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Times closures via [`Bencher::iter`].
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `f` once to warm up, then `sample_size` timed iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares how much work one iteration performs.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoLabel,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        report(&self.name, &id.into_label(), &b.samples, self.throughput);
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoLabel,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        report(&self.name, &id.into_label(), &b.samples, self.throughput);
        self
    }

    /// Ends the group (a no-op in this shim, kept for API parity).
    pub fn finish(self) {}
}

/// Conversion of benchmark identifiers (strings or [`BenchmarkId`]) to a
/// printable label.
pub trait IntoLabel {
    /// Renders the identifier.
    fn into_label(self) -> String;
}

impl IntoLabel for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

impl IntoLabel for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoLabel for String {
    fn into_label(self) -> String {
        self
    }
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: if self.default_sample_size == 0 {
                10
            } else {
                self.default_sample_size
            },
            throughput: None,
            _criterion: self,
        }
    }

    /// Benchmarks a standalone function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoLabel,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: 10,
        };
        f(&mut b);
        report("", &id.into_label(), &b.samples, None);
        self
    }
}

fn report(group: &str, label: &str, samples: &[Duration], throughput: Option<Throughput>) {
    let full = if group.is_empty() {
        label.to_string()
    } else {
        format!("{group}/{label}")
    };
    if samples.is_empty() {
        println!("{full:<48} (no samples — did the bench call iter?)");
        return;
    }
    let min = samples.iter().min().copied().unwrap_or_default();
    let max = samples.iter().max().copied().unwrap_or_default();
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    print!(
        "{full:<48} time: [{} {} {}]",
        fmt_duration(min),
        fmt_duration(mean),
        fmt_duration(max)
    );
    if let Some(t) = throughput {
        let per_sec = |units: u64| units as f64 / mean.as_secs_f64().max(1e-12);
        match t {
            Throughput::Elements(n) => print!("  thrpt: {:.3} Melem/s", per_sec(n) / 1e6),
            Throughput::Bytes(n) => print!("  thrpt: {:.3} MiB/s", per_sec(n) / (1024.0 * 1024.0)),
        }
    }
    println!();
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Bundles benchmark functions into a single runner, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        /// Runs every benchmark registered in this group.
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates the benchmark binary's `main`, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut grp = c.benchmark_group("shim_smoke");
        grp.sample_size(3);
        grp.throughput(Throughput::Elements(100));
        let mut ran = 0u32;
        grp.bench_function("counting", |b| {
            b.iter(|| {
                ran += 1;
                (0..100u64).sum::<u64>()
            })
        });
        grp.bench_with_input(BenchmarkId::new("with_input", 7), &7u64, |b, &x| {
            b.iter(|| x * 2)
        });
        grp.finish();
        // 1 warm-up + 3 samples for the first bench.
        assert_eq!(ran, 4);
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("f", 3).into_label(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").into_label(), "x");
    }
}
