//! Constructors for the small *sample graphs* the paper searches for in a
//! larger data graph (§4, §5): triangles, longer cycles, cliques, paths,
//! stars, and perfect matchings.

use crate::graph::Graph;

/// The triangle `K_3` (§4, Example 2.2).
pub fn triangle() -> Graph {
    clique(3)
}

/// The cycle `C_k` on `k >= 3` nodes. Every cycle is in the Alon class
/// (§5.1).
///
/// # Panics
/// Panics if `k < 3`.
pub fn cycle(k: usize) -> Graph {
    assert!(k >= 3, "a cycle needs at least 3 nodes");
    Graph::from_edges(k, (0..k).map(|i| (i as u32, ((i + 1) % k) as u32)))
}

/// The complete graph `K_k`. Every complete graph is in the Alon class
/// (§5.1).
pub fn clique(k: usize) -> Graph {
    Graph::complete(k)
}

/// The path with `e` edges (so `e + 1` nodes). Odd-length paths are in the
/// Alon class; even-length paths (like the 2-path of §5.4) are not.
pub fn path(e: usize) -> Graph {
    Graph::from_edges(e + 1, (0..e).map(|i| (i as u32, (i + 1) as u32)))
}

/// The 2-path (path with two edges), the simplest non-Alon sample graph
/// (§5.4).
pub fn two_path() -> Graph {
    path(2)
}

/// The star `K_{1,k}`: a centre node 0 connected to `k` leaves.
pub fn star(k: usize) -> Graph {
    Graph::from_edges(k + 1, (1..=k).map(|i| (0u32, i as u32)))
}

/// A perfect matching on `2k` nodes: edges `(0,1), (2,3), ...`. Graphs with
/// a perfect matching are in the Alon class (§5.1).
pub fn matching(k: usize) -> Graph {
    Graph::from_edges(2 * k, (0..k).map(|i| ((2 * i) as u32, (2 * i + 1) as u32)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_is_k3() {
        let t = triangle();
        assert_eq!(t.num_nodes(), 3);
        assert_eq!(t.num_edges(), 3);
    }

    #[test]
    fn cycle_structure() {
        let c = cycle(5);
        assert_eq!(c.num_nodes(), 5);
        assert_eq!(c.num_edges(), 5);
        for u in 0..5u32 {
            assert_eq!(c.degree(u), 2);
        }
        assert!(c.is_connected());
    }

    #[test]
    fn path_and_star() {
        let p = path(2);
        assert_eq!(p.num_nodes(), 3);
        assert_eq!(p.num_edges(), 2);
        assert_eq!(p.degree(1), 2);
        let s = star(4);
        assert_eq!(s.num_nodes(), 5);
        assert_eq!(s.degree(0), 4);
        assert_eq!(s.degree(1), 1);
    }

    #[test]
    fn matching_is_disjoint_edges() {
        let m = matching(3);
        assert_eq!(m.num_nodes(), 6);
        assert_eq!(m.num_edges(), 3);
        assert_eq!(m.max_degree(), 1);
    }
}
