//! Seeded random graph generators.
//!
//! The paper's sparse-graph analysis (§4.2, §5.3) assumes the data graph is
//! `m` edges chosen uniformly at random from the `n(n-1)/2` possible edges —
//! exactly the Erdős–Rényi `G(n,m)` model implemented here. The power-law
//! generator exercises the skewed-data caveat of §1.4 (nodes whose degree
//! exceeds the reducer-size budget `q`).

use crate::graph::Graph;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::HashSet;

/// Erdős–Rényi `G(n, m)`: `m` distinct edges uniform over all `(n 2)` pairs.
///
/// # Panics
/// Panics if `m` exceeds the number of possible edges.
pub fn gnm(n: usize, m: usize, seed: u64) -> Graph {
    let possible = n * (n - 1) / 2;
    assert!(
        m <= possible,
        "m={m} exceeds the {possible} possible edges on {n} nodes"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    // For dense requests, sample by shuffling the full edge universe;
    // for sparse ones, rejection-sample pairs.
    if m * 3 >= possible {
        let mut all: Vec<(u32, u32)> = Vec::with_capacity(possible);
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                all.push((u, v));
            }
        }
        // Partial Fisher-Yates: choose the first m slots.
        for i in 0..m {
            let j = rng.random_range(i..all.len());
            all.swap(i, j);
        }
        all.truncate(m);
        Graph::from_edges(n, all)
    } else {
        let mut chosen: HashSet<(u32, u32)> = HashSet::with_capacity(m);
        while chosen.len() < m {
            let a = rng.random_range(0..n as u32);
            let b = rng.random_range(0..n as u32);
            if a == b {
                continue;
            }
            let e = if a < b { (a, b) } else { (b, a) };
            chosen.insert(e);
        }
        Graph::from_edges(n, chosen)
    }
}

/// Erdős–Rényi `G(n, p)`: each possible edge present independently with
/// probability `p`.
///
/// # Panics
/// Panics if `p` is outside `[0, 1]`.
pub fn gnp(n: usize, p: f64, seed: u64) -> Graph {
    assert!((0.0..=1.0).contains(&p), "p={p} must be in [0,1]");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::new(n);
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            if rng.random::<f64>() < p {
                g.add_edge(u, v);
            }
        }
    }
    g.finish();
    g
}

/// A random bipartite graph: parts `0..left` and `left..left+right`, with
/// `m` distinct cross edges.
///
/// # Panics
/// Panics if `m > left * right`.
pub fn bipartite(left: usize, right: usize, m: usize, seed: u64) -> Graph {
    assert!(
        m <= left * right,
        "m={m} exceeds the {} possible cross edges",
        left * right
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let n = left + right;
    let mut chosen: HashSet<(u32, u32)> = HashSet::with_capacity(m);
    while chosen.len() < m {
        let a = rng.random_range(0..left as u32);
        let b = left as u32 + rng.random_range(0..right as u32);
        chosen.insert((a, b));
    }
    Graph::from_edges(n, chosen)
}

/// Chung–Lu power-law graph: node `i` gets expected weight proportional to
/// `(i+1)^(-1/(gamma-1))`, and each pair `{u,v}` is an edge with probability
/// `min(1, w_u w_v / Σw)`.
///
/// Produces the heavy-tailed degree sequences that break the uniform-load
/// assumption in the paper's model (§1.4): hub nodes have degree far above
/// the reducer budget `q`, which the skew experiment measures.
///
/// # Panics
/// Panics if `gamma <= 1`.
pub fn power_law(n: usize, gamma: f64, avg_degree: f64, seed: u64) -> Graph {
    assert!(gamma > 1.0, "gamma={gamma} must exceed 1");
    let mut rng = StdRng::seed_from_u64(seed);
    let exponent = -1.0 / (gamma - 1.0);
    let mut w: Vec<f64> = (0..n).map(|i| ((i + 1) as f64).powf(exponent)).collect();
    let sum: f64 = w.iter().sum();
    // Scale so that the expected total degree is n * avg_degree.
    let scale = (n as f64 * avg_degree / sum).sqrt();
    for x in &mut w {
        *x *= scale;
    }
    let total: f64 = w.iter().sum();
    let mut g = Graph::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            let p = (w[u] * w[v] / total).min(1.0);
            if rng.random::<f64>() < p {
                g.add_edge(u as u32, v as u32);
            }
        }
    }
    g.finish();
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gnm_exact_edge_count() {
        for &(n, m) in &[(10, 0), (10, 13), (10, 45), (50, 200)] {
            let g = gnm(n, m, 42);
            assert_eq!(g.num_nodes(), n);
            assert_eq!(g.num_edges(), m);
        }
    }

    #[test]
    fn gnm_is_deterministic_per_seed() {
        let a = gnm(30, 100, 7);
        let b = gnm(30, 100, 7);
        assert_eq!(a.edges(), b.edges());
        let c = gnm(30, 100, 8);
        assert_ne!(a.edges(), c.edges());
    }

    #[test]
    fn gnm_dense_path_equals_complete() {
        let g = gnm(8, 28, 1);
        assert_eq!(g.num_edges(), 28);
        assert_eq!(g.max_degree(), 7);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn gnm_rejects_oversized_m() {
        gnm(5, 11, 0);
    }

    #[test]
    fn gnp_extremes() {
        assert_eq!(gnp(12, 0.0, 3).num_edges(), 0);
        assert_eq!(gnp(12, 1.0, 3).num_edges(), 66);
    }

    #[test]
    fn gnp_density_roughly_matches_p() {
        let g = gnp(100, 0.3, 9);
        let possible = 100 * 99 / 2;
        let density = g.num_edges() as f64 / possible as f64;
        assert!(
            (density - 0.3).abs() < 0.05,
            "density {density} too far from 0.3"
        );
    }

    #[test]
    fn bipartite_has_no_intra_part_edges() {
        let g = bipartite(6, 8, 20, 11);
        assert_eq!(g.num_edges(), 20);
        for e in g.edges() {
            assert!(e.u < 6 && e.v >= 6, "edge {e} crosses within a part");
        }
    }

    #[test]
    fn power_law_is_skewed() {
        let g = power_law(200, 2.2, 4.0, 5);
        let max = g.max_degree() as f64;
        let avg = 2.0 * g.num_edges() as f64 / 200.0;
        assert!(
            max > 3.0 * avg,
            "expected a hub: max degree {max} vs average {avg}"
        );
    }
}
