//! Serial subgraph-enumeration baselines.
//!
//! These exact, single-machine algorithms define *ground truth* for the
//! distributed mapping schemas in `mr-core`: a schema is correct iff the set
//! of outputs produced across all reducers equals the set enumerated here.
//!
//! * triangles — merge-intersection over adjacency lists,
//! * 2-paths — per-middle-node pair enumeration (§5.4),
//! * general sample graphs — backtracking subgraph-isomorphism counting,
//!   with automorphism correction so each *instance* (node set + edge
//!   mapping) is counted once, matching the paper's notion of an output.

use crate::graph::Graph;

/// Enumerates all triangles `{u, v, w}` with `u < v < w`.
pub fn triangles(g: &Graph) -> Vec<[u32; 3]> {
    let mut out = Vec::new();
    for e in g.edges() {
        let (u, v) = (e.u, e.v);
        // Intersect neighbour lists, keeping only w > v to canonicalise.
        let (mut i, mut j) = (0usize, 0usize);
        let (nu, nv) = (g.neighbors(u), g.neighbors(v));
        while i < nu.len() && j < nv.len() {
            match nu[i].cmp(&nv[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    if nu[i] > v {
                        out.push([u, v, nu[i]]);
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
    }
    out
}

/// Number of triangles, without materialising them.
pub fn triangle_count(g: &Graph) -> u64 {
    let mut count = 0u64;
    for e in g.edges() {
        let (u, v) = (e.u, e.v);
        let (mut i, mut j) = (0usize, 0usize);
        let (nu, nv) = (g.neighbors(u), g.neighbors(v));
        while i < nu.len() && j < nv.len() {
            match nu[i].cmp(&nv[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    if nu[i] > v {
                        count += 1;
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
    }
    count
}

/// Enumerates all 2-paths `v - u - w` as `(middle, end1, end2)` with
/// `end1 < end2` (§5.4: a set of three nodes forms up to three distinct
/// 2-paths, one per choice of middle node).
pub fn two_paths(g: &Graph) -> Vec<(u32, u32, u32)> {
    let mut out = Vec::new();
    for u in 0..g.num_nodes() as u32 {
        let nb = g.neighbors(u);
        for i in 0..nb.len() {
            for j in (i + 1)..nb.len() {
                out.push((u, nb[i], nb[j]));
            }
        }
    }
    out
}

/// Number of 2-paths: `Σ_u C(deg(u), 2)`.
pub fn two_path_count(g: &Graph) -> u64 {
    (0..g.num_nodes() as u32)
        .map(|u| {
            let d = g.degree(u) as u64;
            // C(d, 2), zero for isolated and degree-1 nodes.
            d * d.saturating_sub(1) / 2
        })
        .sum()
}

/// Counts the number of *injective homomorphisms* from `pattern` into `g`:
/// injective node maps under which every pattern edge lands on a data edge.
/// (The data graph may have extra edges among the mapped nodes; instances
/// are not required to be induced, matching the paper's outputs.)
pub fn injective_homomorphisms(pattern: &Graph, g: &Graph) -> u64 {
    let s = pattern.num_nodes();
    if s == 0 {
        return 1;
    }
    if s > g.num_nodes() {
        return 0;
    }
    // Order pattern nodes so each (after the first) connects backwards when
    // possible; plain 0..s order is fine for the small patterns we use.
    let mut assignment: Vec<Option<u32>> = vec![None; s];
    let mut used = vec![false; g.num_nodes()];
    fn recurse(
        pattern: &Graph,
        g: &Graph,
        pos: usize,
        assignment: &mut Vec<Option<u32>>,
        used: &mut Vec<bool>,
    ) -> u64 {
        if pos == pattern.num_nodes() {
            return 1;
        }
        let mut total = 0;
        // Candidate set: if some earlier neighbour is assigned, restrict to
        // its data-graph neighbours; otherwise all unused nodes.
        let anchor = pattern.neighbors(pos as u32).iter().find_map(|&p| {
            if (p as usize) < pos {
                assignment[p as usize]
            } else {
                None
            }
        });
        let candidates: Vec<u32> = match anchor {
            Some(a) => g.neighbors(a).to_vec(),
            None => (0..g.num_nodes() as u32).collect(),
        };
        'cand: for c in candidates {
            if used[c as usize] {
                continue;
            }
            for &p in pattern.neighbors(pos as u32) {
                if (p as usize) < pos {
                    let img = assignment[p as usize].expect("earlier node assigned");
                    if !g.has_edge(img, c) {
                        continue 'cand;
                    }
                }
            }
            assignment[pos] = Some(c);
            used[c as usize] = true;
            total += recurse(pattern, g, pos + 1, assignment, used);
            used[c as usize] = false;
            assignment[pos] = None;
        }
        total
    }
    recurse(pattern, g, 0, &mut assignment, &mut used)
}

/// Number of automorphisms of a small pattern graph (brute force over all
/// permutations; patterns in this codebase have at most ~8 nodes).
///
/// # Panics
/// Panics if the pattern has more than 10 nodes (10! permutations is the
/// sanity cap for brute force).
pub fn automorphisms(pattern: &Graph) -> u64 {
    let s = pattern.num_nodes();
    assert!(s <= 10, "automorphism brute force capped at 10 nodes");
    let mut perm: Vec<u32> = (0..s as u32).collect();
    let mut count = 0u64;
    // Heap's algorithm over all permutations.
    fn is_automorphism(pattern: &Graph, perm: &[u32]) -> bool {
        pattern
            .edges()
            .iter()
            .all(|e| pattern.has_edge(perm[e.u as usize], perm[e.v as usize]))
    }
    fn heap(pattern: &Graph, k: usize, perm: &mut Vec<u32>, count: &mut u64) {
        if k == 1 {
            if is_automorphism(pattern, perm) {
                *count += 1;
            }
            return;
        }
        for i in 0..k {
            heap(pattern, k - 1, perm, count);
            if k.is_multiple_of(2) {
                perm.swap(i, k - 1);
            } else {
                perm.swap(0, k - 1);
            }
        }
    }
    heap(pattern, s, &mut perm, &mut count);
    count
}

/// Counts *instances* of `pattern` in `g`: injective homomorphisms divided
/// by the pattern's automorphism count. This matches the paper's outputs —
/// e.g. each triangle `{u,v,w}` counts once, not 6 times.
pub fn instances(pattern: &Graph, g: &Graph) -> u64 {
    let homs = injective_homomorphisms(pattern, g);
    let auts = automorphisms(pattern);
    debug_assert_eq!(homs % auts, 0, "homomorphism count must divide evenly");
    homs / auts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::patterns;

    /// `K_n` has `C(n,3)` triangles.
    #[test]
    fn triangles_in_complete_graph() {
        let g = Graph::complete(7);
        assert_eq!(triangle_count(&g), 35);
        assert_eq!(triangles(&g).len(), 35);
    }

    #[test]
    fn triangles_canonical_and_distinct() {
        let g = gen::gnm(20, 100, 3);
        let ts = triangles(&g);
        let mut seen = std::collections::HashSet::new();
        for t in &ts {
            assert!(t[0] < t[1] && t[1] < t[2], "triple {t:?} not canonical");
            assert!(g.has_edge(t[0], t[1]) && g.has_edge(t[1], t[2]) && g.has_edge(t[0], t[2]));
            assert!(seen.insert(*t), "duplicate triangle {t:?}");
        }
    }

    #[test]
    fn no_triangles_in_bipartite() {
        let g = gen::bipartite(10, 10, 50, 1);
        assert_eq!(triangle_count(&g), 0);
    }

    /// `K_n` has `3·C(n,3)` 2-paths (§5.4.1: each node triple yields 3).
    #[test]
    fn two_paths_in_complete_graph() {
        let g = Graph::complete(6);
        assert_eq!(two_path_count(&g), 3 * 20);
        assert_eq!(two_paths(&g).len(), 60);
    }

    #[test]
    fn two_path_count_matches_enumeration() {
        let g = gen::gnm(25, 80, 17);
        assert_eq!(two_path_count(&g), two_paths(&g).len() as u64);
    }

    #[test]
    fn automorphism_counts() {
        assert_eq!(automorphisms(&patterns::triangle()), 6);
        assert_eq!(automorphisms(&patterns::cycle(4)), 8);
        assert_eq!(automorphisms(&patterns::cycle(5)), 10);
        assert_eq!(automorphisms(&patterns::clique(4)), 24);
        assert_eq!(automorphisms(&patterns::two_path()), 2);
        assert_eq!(automorphisms(&patterns::star(3)), 6);
    }

    #[test]
    fn instances_agree_with_specialised_counters() {
        let g = gen::gnm(15, 60, 23);
        assert_eq!(instances(&patterns::triangle(), &g), triangle_count(&g));
        assert_eq!(instances(&patterns::two_path(), &g), two_path_count(&g));
    }

    /// `C(n,4) * 3` four-cycles in `K_n` (3 distinct 4-cycles per node set).
    #[test]
    fn four_cycles_in_complete_graph() {
        let g = Graph::complete(6);
        let c4 = patterns::cycle(4);
        assert_eq!(instances(&c4, &g), 15 * 3);
    }

    #[test]
    fn cliques_in_complete_graph() {
        let g = Graph::complete(7);
        assert_eq!(instances(&patterns::clique(4), &g), 35); // C(7,4)
    }

    #[test]
    fn pattern_larger_than_graph_has_no_instances() {
        let g = Graph::complete(3);
        assert_eq!(instances(&patterns::clique(5), &g), 0);
    }
}
