//! Membership test for the *Alon class* of sample graphs (§5.1).
//!
//! A sample graph is in the Alon class when its node set can be partitioned
//! into disjoint subsets such that the subgraph induced by each subset
//! either (1) is a single edge between two nodes, or (2) contains an
//! odd-length Hamiltonian cycle. For graphs in this class, Alon's theorem
//! bounds the number of instances in an `m`-edge data graph by `O(m^{s/2})`,
//! which is the `g(q) = q^{s/2}` the paper's lower-bound recipe uses (§5.2).
//!
//! Sample graphs are tiny (≤ ~16 nodes), so exact bitmask search is
//! appropriate: we enumerate submask partitions with memoisation, checking
//! Hamiltonicity by bitmask DP.

use crate::graph::Graph;
use std::collections::HashMap;

/// Checks whether the subgraph of `g` induced by the nodes in `mask` has a
/// Hamiltonian cycle (visiting every node of `mask` exactly once).
///
/// Runs the Held–Karp reachability DP; fine for ≤ 20 nodes.
fn induced_has_hamiltonian_cycle(g: &Graph, mask: u32) -> bool {
    let nodes: Vec<u32> = (0..g.num_nodes() as u32)
        .filter(|&v| mask & (1 << v) != 0)
        .collect();
    let k = nodes.len();
    if k < 3 {
        return false;
    }
    let idx_of: HashMap<u32, usize> = nodes.iter().enumerate().map(|(i, &v)| (v, i)).collect();
    // adjacency among local indices
    let mut adj = vec![0u32; k];
    for i in 0..k {
        for j in 0..k {
            if i != j && g.has_edge(nodes[i], nodes[j]) {
                adj[i] |= 1 << j;
            }
        }
    }
    let _ = idx_of;
    // dp[visited][last] = reachable from node 0, starting at local node 0.
    let full = (1u32 << k) - 1;
    let mut dp = vec![vec![false; k]; 1 << k];
    dp[1][0] = true;
    for visited in 1u32..=full {
        if visited & 1 == 0 {
            continue; // paths must start at node 0
        }
        for last in 0..k {
            if !dp[visited as usize][last] {
                continue;
            }
            let mut nexts = adj[last] & !visited;
            while nexts != 0 {
                let nxt = nexts.trailing_zeros() as usize;
                nexts &= nexts - 1;
                dp[(visited | (1 << nxt)) as usize][nxt] = true;
            }
        }
    }
    (0..k).any(|last| dp[full as usize][last] && adj[last] & 1 != 0)
}

/// Describes one block of an Alon-class decomposition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Block {
    /// Two nodes joined by an edge.
    SingleEdge(u32, u32),
    /// A node subset of odd size whose induced subgraph has a Hamiltonian
    /// cycle (nodes listed in increasing order).
    OddHamiltonian(Vec<u32>),
}

impl Block {
    /// The nodes covered by this block.
    pub fn nodes(&self) -> Vec<u32> {
        match self {
            Block::SingleEdge(a, b) => vec![*a, *b],
            Block::OddHamiltonian(v) => v.clone(),
        }
    }
}

/// Returns an Alon-class decomposition of `g` if one exists: a partition of
/// all nodes into [`Block`]s. Returns `None` when `g` is not in the class
/// (e.g. the even-length path of §5.4).
///
/// # Panics
/// Panics if `g` has more than 20 nodes (sample graphs are small by
/// definition; the exact search is exponential).
pub fn alon_decomposition(g: &Graph) -> Option<Vec<Block>> {
    let n = g.num_nodes();
    assert!(n <= 20, "Alon-class search capped at 20 nodes");
    if n == 0 {
        return Some(Vec::new());
    }
    let full: u32 = if n == 32 { u32::MAX } else { (1 << n) - 1 };

    // Precompute, for every submask, whether it qualifies as a block.
    // Qualifying blocks: size 2 with the edge present, or odd size >= 3
    // with an induced Hamiltonian cycle.
    let mut memo: HashMap<u32, Option<Vec<Block>>> = HashMap::new();

    fn solve(
        g: &Graph,
        mask: u32,
        memo: &mut HashMap<u32, Option<Vec<Block>>>,
    ) -> Option<Vec<Block>> {
        if mask == 0 {
            return Some(Vec::new());
        }
        if let Some(cached) = memo.get(&mask) {
            return cached.clone();
        }
        let lowest = mask.trailing_zeros();
        let rest = mask & !(1 << lowest);

        // Case 1: pair the lowest node with another adjacent node.
        let mut candidates = rest;
        while candidates != 0 {
            let other = candidates.trailing_zeros();
            candidates &= candidates - 1;
            if g.has_edge(lowest, other) {
                let remaining = mask & !(1 << lowest) & !(1 << other);
                if let Some(mut blocks) = solve(g, remaining, memo) {
                    blocks.push(Block::SingleEdge(lowest, other));
                    memo.insert(mask, Some(blocks.clone()));
                    return Some(blocks);
                }
            }
        }

        // Case 2: an odd-size (>= 3) submask containing the lowest node
        // whose induced subgraph is Hamiltonian.
        // Enumerate submasks of `rest` and add the lowest bit.
        let mut sub = rest;
        loop {
            let block_mask = sub | (1 << lowest);
            let size = block_mask.count_ones();
            if size >= 3 && size % 2 == 1 && induced_has_hamiltonian_cycle(g, block_mask) {
                let remaining = mask & !block_mask;
                if let Some(mut blocks) = solve(g, remaining, memo) {
                    let nodes: Vec<u32> = (0..32).filter(|&v| block_mask & (1 << v) != 0).collect();
                    blocks.push(Block::OddHamiltonian(nodes));
                    memo.insert(mask, Some(blocks.clone()));
                    return Some(blocks);
                }
            }
            if sub == 0 {
                break;
            }
            sub = (sub - 1) & rest;
        }

        memo.insert(mask, None);
        None
    }

    solve(g, full, &mut memo)
}

/// True iff `g` is in the Alon class (§5.1).
pub fn is_alon_class(g: &Graph) -> bool {
    alon_decomposition(g).is_some()
}

/// Validates that `blocks` really is an Alon decomposition of `g`:
/// the blocks partition the node set and each block qualifies.
pub fn verify_decomposition(g: &Graph, blocks: &[Block]) -> bool {
    let mut covered = vec![false; g.num_nodes()];
    for b in blocks {
        match b {
            Block::SingleEdge(a, x) => {
                if !g.has_edge(*a, *x) {
                    return false;
                }
                for v in [*a, *x] {
                    if covered[v as usize] {
                        return false;
                    }
                    covered[v as usize] = true;
                }
            }
            Block::OddHamiltonian(nodes) => {
                if nodes.len() < 3 || nodes.len() % 2 == 0 {
                    return false;
                }
                let mask: u32 = nodes.iter().map(|&v| 1 << v).fold(0, |a, b| a | b);
                if !induced_has_hamiltonian_cycle(g, mask) {
                    return false;
                }
                for &v in nodes {
                    if covered[v as usize] {
                        return false;
                    }
                    covered[v as usize] = true;
                }
            }
        }
    }
    covered.iter().all(|&c| c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns;

    #[test]
    fn triangle_is_alon() {
        // The triangle itself is an odd Hamiltonian cycle.
        let t = patterns::triangle();
        let d = alon_decomposition(&t).expect("triangle is in the Alon class");
        assert!(verify_decomposition(&t, &d));
    }

    #[test]
    fn every_cycle_is_alon() {
        for k in 3..=9 {
            let c = patterns::cycle(k);
            let d =
                alon_decomposition(&c).unwrap_or_else(|| panic!("C_{k} must be in the Alon class"));
            assert!(verify_decomposition(&c, &d), "bad decomposition for C_{k}");
        }
    }

    #[test]
    fn cliques_are_alon() {
        for k in 2..=7 {
            let g = patterns::clique(k);
            assert!(is_alon_class(&g), "K_{k} must be in the Alon class");
        }
    }

    #[test]
    fn perfect_matchings_are_alon() {
        for k in 1..=5 {
            assert!(is_alon_class(&patterns::matching(k)));
        }
    }

    #[test]
    fn odd_paths_are_alon_even_paths_are_not() {
        // §5.1: odd-length paths decompose into alternating edges;
        // even-length paths (odd node count, no odd cycle) are not Alon.
        for e in [1usize, 3, 5, 7] {
            assert!(is_alon_class(&patterns::path(e)), "path with {e} edges");
        }
        for e in [2usize, 4, 6] {
            assert!(!is_alon_class(&patterns::path(e)), "path with {e} edges");
        }
    }

    #[test]
    fn two_path_is_the_canonical_non_alon_graph() {
        assert!(!is_alon_class(&patterns::two_path()));
    }

    #[test]
    fn stars_with_many_leaves_are_not_alon() {
        // K_{1,k} for k >= 2 has no perfect matching and no cycles.
        assert!(is_alon_class(&patterns::star(1))); // single edge
        for k in 2..=5 {
            assert!(!is_alon_class(&patterns::star(k)), "star K_1_{k}");
        }
    }

    #[test]
    fn isolated_node_is_not_alon() {
        let g = Graph::new(1);
        assert!(!is_alon_class(&g));
        assert!(is_alon_class(&Graph::new(0))); // vacuous
    }

    #[test]
    fn hamiltonian_cycle_detector() {
        let c5 = patterns::cycle(5);
        assert!(induced_has_hamiltonian_cycle(&c5, 0b11111));
        let p4 = patterns::path(3); // 4 nodes, no cycle at all
        assert!(!induced_has_hamiltonian_cycle(&p4, 0b1111));
        // K_4 minus one edge still has a Hamiltonian cycle.
        let mut g = Graph::complete(4);
        g = {
            let edges: Vec<(u32, u32)> = g
                .edges()
                .iter()
                .filter(|e| !(e.u == 0 && e.v == 1))
                .map(|e| (e.u, e.v))
                .collect();
            Graph::from_edges(4, edges)
        };
        assert!(induced_has_hamiltonian_cycle(&g, 0b1111));
    }

    #[test]
    fn decomposition_blocks_partition_nodes() {
        let c6 = patterns::cycle(6);
        let d = alon_decomposition(&c6).expect("C_6 is Alon (perfect matching)");
        let mut all: Vec<u32> = d.iter().flat_map(|b| b.nodes()).collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3, 4, 5]);
    }
}
