#![warn(missing_docs)]

//! Graph substrate for the map-reduce bounds reproduction.
//!
//! The paper (Afrati et al., *Upper and Lower Bounds on the Cost of a
//! Map-Reduce Computation*, VLDB 2013) analyses several graph problems:
//! triangle finding (§4), general sample graphs in the Alon class (§5.1–5.3),
//! and 2-paths (§5.4). This crate supplies everything those analyses need
//! as a substrate:
//!
//! * [`Graph`] — an undirected simple graph with O(1) amortised edge tests,
//! * [`gen`] — seeded random generators (Erdős–Rényi `G(n,m)` / `G(n,p)`,
//!   complete graphs, bipartite graphs, and a Chung–Lu power-law generator
//!   used for the skew experiments),
//! * [`subgraph`] — **serial baselines**: exact triangle / 2-path /
//!   general-pattern enumeration used to validate the distributed
//!   algorithms' outputs,
//! * [`alon`] — a decision procedure for membership in the *Alon class*
//!   of sample graphs (§5.1), together with Hamiltonian-cycle machinery,
//! * [`patterns`] — constructors for the small sample graphs the paper
//!   mentions (cycles, cliques, paths, stars, matchings).

pub mod alon;
pub mod gen;
pub mod graph;
pub mod labeled;
pub mod patterns;
pub mod subgraph;

pub use graph::Graph;
pub use labeled::LabeledGraph;
