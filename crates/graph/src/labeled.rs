//! Data graphs with labeled edges.
//!
//! §5.5 views a multiway join of binary relations as searching for sample
//! graphs in a data graph whose edges carry *labels* (the relation names).
//! [`LabeledGraph`] is that view: a multigraph where each edge is a
//! `(u, v, label)` triple and parallel edges with different labels may
//! coexist.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::HashSet;

/// A labeled edge: endpoints are *ordered* (relations are over ordered
/// attribute pairs), and `label` identifies the relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LabeledEdge {
    /// Source node (first attribute value).
    pub u: u32,
    /// Target node (second attribute value).
    pub v: u32,
    /// Relation identifier.
    pub label: u32,
}

/// A directed multigraph with labeled edges over nodes `0..n`.
#[derive(Debug, Clone, Default)]
pub struct LabeledGraph {
    n: usize,
    edges: Vec<LabeledEdge>,
}

impl LabeledGraph {
    /// Creates an empty labeled graph on `n` nodes.
    pub fn new(n: usize) -> Self {
        LabeledGraph {
            n,
            edges: Vec::new(),
        }
    }

    /// Adds edge `(u, v)` with `label`.
    ///
    /// # Panics
    /// Panics if an endpoint is out of range.
    pub fn add_edge(&mut self, u: u32, v: u32, label: u32) {
        assert!(
            (u as usize) < self.n && (v as usize) < self.n,
            "edge ({u},{v}) out of range for n={}",
            self.n
        );
        self.edges.push(LabeledEdge { u, v, label });
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// All edges, in insertion order.
    pub fn edges(&self) -> &[LabeledEdge] {
        &self.edges
    }

    /// Edges carrying a particular label (one relation's tuples).
    pub fn edges_with_label(&self, label: u32) -> impl Iterator<Item = &LabeledEdge> {
        self.edges.iter().filter(move |e| e.label == label)
    }

    /// Generates a random database for an `N`-relation query over a domain
    /// of `n` values: each relation gets `tuples_per_rel` distinct random
    /// ordered pairs.
    pub fn random_database(
        n: usize,
        num_relations: usize,
        tuples_per_rel: usize,
        seed: u64,
    ) -> Self {
        assert!(
            tuples_per_rel <= n * n,
            "cannot place {tuples_per_rel} distinct pairs in a {n}x{n} domain"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut g = LabeledGraph::new(n);
        for label in 0..num_relations as u32 {
            let mut chosen: HashSet<(u32, u32)> = HashSet::with_capacity(tuples_per_rel);
            while chosen.len() < tuples_per_rel {
                let a = rng.random_range(0..n as u32);
                let b = rng.random_range(0..n as u32);
                chosen.insert((a, b));
            }
            // Sort for determinism: HashSet iteration order varies between
            // instances even with identical contents.
            let mut tuples: Vec<(u32, u32)> = chosen.into_iter().collect();
            tuples.sort_unstable();
            for (a, b) in tuples {
                g.add_edge(a, b, label);
            }
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_separate_relations() {
        let mut g = LabeledGraph::new(4);
        g.add_edge(0, 1, 0);
        g.add_edge(0, 1, 1); // parallel edge, different relation
        g.add_edge(2, 3, 0);
        assert_eq!(g.edges().len(), 3);
        assert_eq!(g.edges_with_label(0).count(), 2);
        assert_eq!(g.edges_with_label(1).count(), 1);
    }

    #[test]
    fn random_database_sizes() {
        let g = LabeledGraph::random_database(10, 3, 25, 9);
        for label in 0..3 {
            assert_eq!(g.edges_with_label(label).count(), 25);
        }
        // Determinism.
        let g2 = LabeledGraph::random_database(10, 3, 25, 9);
        assert_eq!(g.edges(), g2.edges());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range() {
        let mut g = LabeledGraph::new(2);
        g.add_edge(0, 5, 0);
    }
}
