//! Undirected simple graph with sorted adjacency lists.
//!
//! Nodes are dense `u32` identifiers in `0..n`. Edges are stored both as a
//! canonical edge list (`u < v`) and as per-node sorted adjacency vectors, so
//! that edge membership tests are `O(log deg)` and neighbourhood
//! intersections (the inner loop of triangle enumeration) are linear merges.

use std::fmt;

/// An undirected edge in canonical form (`u < v`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Edge {
    /// Smaller endpoint.
    pub u: u32,
    /// Larger endpoint.
    pub v: u32,
}

impl Edge {
    /// Creates a canonical edge from any ordering of the two endpoints.
    ///
    /// # Panics
    /// Panics if `a == b` (self-loops are not representable in a simple
    /// graph).
    pub fn new(a: u32, b: u32) -> Self {
        assert_ne!(a, b, "self-loops are not allowed in a simple graph");
        if a < b {
            Edge { u: a, v: b }
        } else {
            Edge { u: b, v: a }
        }
    }

    /// Returns the endpoint that is not `x`.
    ///
    /// # Panics
    /// Panics if `x` is not an endpoint of this edge.
    pub fn other(&self, x: u32) -> u32 {
        if x == self.u {
            self.v
        } else if x == self.v {
            self.u
        } else {
            panic!(
                "node {x} is not an endpoint of edge ({}, {})",
                self.u, self.v
            )
        }
    }

    /// Returns true if `x` is one of the two endpoints.
    pub fn contains(&self, x: u32) -> bool {
        self.u == x || self.v == x
    }
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.u, self.v)
    }
}

/// An undirected simple graph on nodes `0..n`.
#[derive(Debug, Clone, Default)]
pub struct Graph {
    n: usize,
    edges: Vec<Edge>,
    adj: Vec<Vec<u32>>,
    /// True while `adj` lists are sorted and deduplicated.
    sorted: bool,
}

impl Graph {
    /// Creates an empty graph on `n` nodes.
    pub fn new(n: usize) -> Self {
        Graph {
            n,
            edges: Vec::new(),
            adj: vec![Vec::new(); n],
            sorted: true,
        }
    }

    /// Builds a graph from an iterator of `(u, v)` pairs.
    ///
    /// Duplicate edges (in either orientation) are collapsed.
    ///
    /// # Panics
    /// Panics if an endpoint is `>= n` or a pair is a self-loop.
    pub fn from_edges<I>(n: usize, it: I) -> Self
    where
        I: IntoIterator<Item = (u32, u32)>,
    {
        let mut g = Graph::new(n);
        for (a, b) in it {
            g.add_edge(a, b);
        }
        g.finish();
        g
    }

    /// The complete graph `K_n`: all `n(n-1)/2` possible edges.
    ///
    /// This is the "all inputs present" instance the paper's lower-bound
    /// analysis assumes (§2.3).
    pub fn complete(n: usize) -> Self {
        let mut g = Graph::new(n);
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                g.add_edge(u, v);
            }
        }
        g.finish();
        g
    }

    /// Adds edge `{a, b}`. Duplicates are removed by the next [`finish`].
    ///
    /// [`finish`]: Graph::finish
    ///
    /// # Panics
    /// Panics on self-loops or out-of-range endpoints.
    pub fn add_edge(&mut self, a: u32, b: u32) {
        assert!(
            (a as usize) < self.n && (b as usize) < self.n,
            "edge ({a},{b}) out of range for n={}",
            self.n
        );
        let e = Edge::new(a, b);
        self.edges.push(e);
        self.adj[e.u as usize].push(e.v);
        self.adj[e.v as usize].push(e.u);
        self.sorted = false;
    }

    /// Sorts adjacency lists and deduplicates parallel edges. Called
    /// automatically by the `from_*` constructors; call it manually after a
    /// sequence of [`add_edge`](Graph::add_edge) calls.
    pub fn finish(&mut self) {
        if self.sorted {
            return;
        }
        for l in &mut self.adj {
            l.sort_unstable();
            l.dedup();
        }
        self.edges.sort_unstable();
        self.edges.dedup();
        self.sorted = true;
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Number of (deduplicated) edges.
    ///
    /// # Panics
    /// Panics if edges were added since the last [`finish`](Graph::finish).
    pub fn num_edges(&self) -> usize {
        self.assert_finished();
        self.edges.len()
    }

    /// The canonical edge list, sorted.
    pub fn edges(&self) -> &[Edge] {
        self.assert_finished();
        &self.edges
    }

    /// Sorted neighbours of `u`.
    pub fn neighbors(&self, u: u32) -> &[u32] {
        self.assert_finished();
        &self.adj[u as usize]
    }

    /// Degree of `u`.
    pub fn degree(&self, u: u32) -> usize {
        self.assert_finished();
        self.adj[u as usize].len()
    }

    /// Maximum degree over all nodes (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.n as u32)
            .map(|u| self.degree(u))
            .max()
            .unwrap_or(0)
    }

    /// Edge membership test in `O(log deg)`.
    pub fn has_edge(&self, a: u32, b: u32) -> bool {
        self.assert_finished();
        if a == b {
            return false;
        }
        // Search from the lower-degree endpoint.
        let (s, t) = if self.adj[a as usize].len() <= self.adj[b as usize].len() {
            (a, b)
        } else {
            (b, a)
        };
        self.adj[s as usize].binary_search(&t).is_ok()
    }

    /// The subgraph induced by `nodes`, with nodes relabelled to
    /// `0..nodes.len()` in the given order.
    pub fn induced(&self, nodes: &[u32]) -> Graph {
        self.assert_finished();
        let mut g = Graph::new(nodes.len());
        for (i, &a) in nodes.iter().enumerate() {
            for (j, &b) in nodes.iter().enumerate().skip(i + 1) {
                if self.has_edge(a, b) {
                    g.add_edge(i as u32, j as u32);
                }
            }
        }
        g.finish();
        g
    }

    /// True if every node can reach every other node (vacuously true for
    /// graphs with fewer than two nodes).
    pub fn is_connected(&self) -> bool {
        self.assert_finished();
        if self.n <= 1 {
            return true;
        }
        let mut seen = vec![false; self.n];
        let mut stack = vec![0u32];
        seen[0] = true;
        let mut count = 1;
        while let Some(u) = stack.pop() {
            for &v in self.neighbors(u) {
                if !seen[v as usize] {
                    seen[v as usize] = true;
                    count += 1;
                    stack.push(v);
                }
            }
        }
        count == self.n
    }

    fn assert_finished(&self) {
        assert!(
            self.sorted,
            "Graph::finish() must be called after add_edge() before queries"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_canonicalizes() {
        assert_eq!(Edge::new(5, 2), Edge::new(2, 5));
        assert_eq!(Edge::new(2, 5).u, 2);
        assert_eq!(Edge::new(2, 5).v, 5);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn edge_rejects_self_loop() {
        Edge::new(3, 3);
    }

    #[test]
    fn edge_other_endpoint() {
        let e = Edge::new(1, 4);
        assert_eq!(e.other(1), 4);
        assert_eq!(e.other(4), 1);
        assert!(e.contains(1) && e.contains(4) && !e.contains(2));
    }

    #[test]
    fn complete_graph_counts() {
        let g = Graph::complete(6);
        assert_eq!(g.num_nodes(), 6);
        assert_eq!(g.num_edges(), 15);
        assert_eq!(g.max_degree(), 5);
        assert!(g.is_connected());
        for u in 0..6 {
            for v in 0..6 {
                assert_eq!(g.has_edge(u, v), u != v);
            }
        }
    }

    #[test]
    fn duplicate_edges_collapse() {
        let g = Graph::from_edges(3, [(0, 1), (1, 0), (0, 1)]);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    fn induced_subgraph() {
        // Path 0-1-2-3 plus chord 0-2.
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (0, 2)]);
        let sub = g.induced(&[0, 1, 2]);
        assert_eq!(sub.num_edges(), 3); // triangle
        let sub2 = g.induced(&[0, 3]);
        assert_eq!(sub2.num_edges(), 0);
    }

    #[test]
    fn connectivity() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]);
        assert!(!g.is_connected());
        let g2 = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        assert!(g2.is_connected());
        assert!(Graph::new(0).is_connected());
        assert!(Graph::new(1).is_connected());
    }

    #[test]
    fn empty_graph() {
        let g = Graph::new(5);
        assert_eq!(g.max_degree(), 0);
        assert!(!g.is_connected());
    }
}
