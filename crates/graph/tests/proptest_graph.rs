//! Property tests for the graph substrate.

use mr_graph::alon::{alon_decomposition, verify_decomposition};
use mr_graph::{gen, patterns, subgraph, Graph};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// G(n,m) always delivers exactly m edges, within range, canonical.
    #[test]
    fn gnm_shape(n in 4usize..60, density in 0.0f64..1.0, seed in 0u64..10_000) {
        let possible = n * (n - 1) / 2;
        let m = (possible as f64 * density) as usize;
        let g = gen::gnm(n, m, seed);
        prop_assert_eq!(g.num_edges(), m);
        for e in g.edges() {
            prop_assert!(e.u < e.v);
            prop_assert!((e.v as usize) < n);
        }
    }

    /// Triangle counting agrees with the generic pattern counter on
    /// arbitrary graphs.
    #[test]
    fn triangle_count_agrees_with_instances(
        n in 4usize..20,
        density in 0.0f64..0.9,
        seed in 0u64..10_000,
    ) {
        let possible = n * (n - 1) / 2;
        let m = (possible as f64 * density) as usize;
        let g = gen::gnm(n, m, seed);
        prop_assert_eq!(
            subgraph::triangle_count(&g),
            subgraph::instances(&patterns::triangle(), &g)
        );
        prop_assert_eq!(subgraph::triangles(&g).len() as u64, subgraph::triangle_count(&g));
    }

    /// 2-path counting: formula Σ C(deg,2) equals enumeration length.
    #[test]
    fn two_path_formula(n in 4usize..25, density in 0.0f64..0.9, seed in 0u64..10_000) {
        let possible = n * (n - 1) / 2;
        let m = (possible as f64 * density) as usize;
        let g = gen::gnm(n, m, seed);
        prop_assert_eq!(subgraph::two_path_count(&g), subgraph::two_paths(&g).len() as u64);
    }

    /// Any decomposition the Alon search returns verifies.
    #[test]
    fn alon_decompositions_verify(n in 2usize..9, density in 0.2f64..1.0, seed in 0u64..10_000) {
        let possible = n * (n - 1) / 2;
        let m = ((possible as f64 * density) as usize).max(1).min(possible);
        let g = gen::gnm(n, m, seed);
        if let Some(blocks) = alon_decomposition(&g) {
            prop_assert!(verify_decomposition(&g, &blocks));
            // Blocks partition the node set.
            let mut nodes: Vec<u32> = blocks.iter().flat_map(|b| b.nodes()).collect();
            nodes.sort_unstable();
            let expected: Vec<u32> = (0..n as u32).collect();
            prop_assert_eq!(nodes, expected);
        }
    }

    /// Induced subgraphs never have more edges than the parent graph and
    /// preserve adjacency.
    #[test]
    fn induced_subgraph_adjacency(n in 3usize..15, seed in 0u64..10_000) {
        let possible = n * (n - 1) / 2;
        let g = gen::gnm(n, possible / 2, seed);
        let take = n / 2 + 1;
        let nodes: Vec<u32> = (0..take as u32).collect();
        let sub = g.induced(&nodes);
        prop_assert!(sub.num_edges() <= g.num_edges());
        for i in 0..take as u32 {
            for j in (i + 1)..take as u32 {
                prop_assert_eq!(sub.has_edge(i, j), g.has_edge(nodes[i as usize], nodes[j as usize]));
            }
        }
    }

    /// Graph invariants: handshake lemma and degree bounds.
    #[test]
    fn handshake_lemma(n in 2usize..50, density in 0.0f64..1.0, seed in 0u64..10_000) {
        let possible = n * (n - 1) / 2;
        let m = (possible as f64 * density) as usize;
        let g = gen::gnm(n, m, seed);
        let degree_sum: usize = (0..n as u32).map(|u| g.degree(u)).sum();
        prop_assert_eq!(degree_sum, 2 * m);
        prop_assert!(g.max_degree() < n);
    }
}

/// Non-proptest regression: the Alon search result is stable for the
/// paper's named examples regardless of node ordering.
#[test]
fn alon_membership_is_order_independent() {
    // Relabel C_5's nodes and check membership is unchanged.
    let relabeled = Graph::from_edges(5, [(3u32, 1u32), (1, 4), (4, 0), (0, 2), (2, 3)]);
    assert!(mr_graph::alon::is_alon_class(&relabeled));
}
